"""Unit tests for the chaos subsystem's non-engine surface.

The two fleet engines' chaos *behaviour* is pinned by the equivalence
suite (``tests/test_fleet_equivalence.py``); this file covers everything
around it: the frozen spec layer and its serde rules, the seeded schedule
builder, the replica lifecycle state machine, the zero-denominator
regression pins in the result accounting, and the sweep runner's failure
surfacing.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.chaos import (
    BrownoutSpec,
    ChaosSpec,
    CrashSpec,
    PreemptSpec,
    RetryPolicy,
    bad_day_schedule,
    brownout_factor,
)
from repro.config import FleetConfig
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.metrics import LatencyStats
from repro.fleet.replica import STATE_TRANSITIONS, Replica, ReplicaState
from repro.fleet.requests import FailureRecord
from repro.fleet.result import FleetResult
from repro.scenarios import Scenario, get_scenario, run_sweep
from repro.scenarios.runner import SweepError

L, E, G = 4, 8, 4


def _replica(state: ReplicaState = ReplicaState.RUNNING, **kwargs) -> Replica:
    return Replica(
        replica_id=0,
        placement=vanilla_placement(L, E, G),
        regime=0,
        max_batch_requests=8,
        num_gpus=G,
        state=state,
        **kwargs,
    )


def _empty_result(**overrides) -> FleetResult:
    base = dict(
        completed=(),
        shed=(),
        latency=LatencyStats.from_samples([]),
        queue=LatencyStats.from_samples([]),
        makespan_s=0.0,
        replicas=(),
        scale_events=(),
        slo_attainment={},
    )
    base.update(overrides)
    return FleetResult(**base)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_one_based(self):
        pol = RetryPolicy(max_attempts=4, backoff_base_s=0.01, backoff_factor=3.0)
        assert pol.backoff_s(1) == 0.01
        assert pol.backoff_s(2) == 0.01 * 3.0
        assert pol.backoff_s(3) == 0.01 * 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.001)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_s=0.0)


class TestSpecValidation:
    def test_crash_and_preempt_reject_negatives(self):
        with pytest.raises(ValueError):
            CrashSpec(time_s=-1.0, replica=0)
        with pytest.raises(ValueError):
            CrashSpec(time_s=0.0, replica=-1)
        with pytest.raises(ValueError):
            PreemptSpec(time_s=0.1, replica=0, grace_s=-0.01)

    def test_brownout_rejects_empty_window_and_zero_factor(self):
        with pytest.raises(ValueError):
            BrownoutSpec(start_s=0.0, duration_s=0.0, replica=0)
        with pytest.raises(ValueError):
            BrownoutSpec(start_s=0.0, duration_s=0.1, replica=0, factor=0.0)

    def test_chaos_spec_coerces_lists_and_typechecks(self):
        spec = ChaosSpec(crashes=[CrashSpec(0.1, 0)])
        assert isinstance(spec.crashes, tuple)
        with pytest.raises(TypeError):
            ChaosSpec(crashes=(PreemptSpec(0.1, 0),))
        with pytest.raises(TypeError):
            ChaosSpec(retry=None)

    def test_has_faults_ignores_brownouts(self):
        soft = ChaosSpec(brownouts=(BrownoutSpec(0.0, 0.1, 0),))
        assert not soft.has_faults
        assert ChaosSpec(crashes=(CrashSpec(0.1, 0),)).has_faults


class TestBrownoutFactor:
    def test_window_is_half_open(self):
        b = (BrownoutSpec(start_s=1.0, duration_s=0.5, replica=0, factor=3.0),)
        assert brownout_factor(b, 0, 0.999) == 1.0
        assert brownout_factor(b, 0, 1.0) == 3.0
        assert brownout_factor(b, 0, 1.499999) == 3.0
        assert brownout_factor(b, 0, 1.5) == 1.0

    def test_other_replica_unaffected(self):
        b = (BrownoutSpec(start_s=0.0, duration_s=1.0, replica=2, factor=5.0),)
        assert brownout_factor(b, 0, 0.5) == 1.0
        assert brownout_factor(b, 2, 0.5) == 5.0

    def test_overlapping_windows_multiply(self):
        b = (
            BrownoutSpec(start_s=0.0, duration_s=1.0, replica=0, factor=2.0),
            BrownoutSpec(start_s=0.5, duration_s=1.0, replica=0, factor=3.0),
        )
        assert brownout_factor(b, 0, 0.25) == 2.0
        assert brownout_factor(b, 0, 0.75) == 6.0
        assert brownout_factor(b, 0, 1.25) == 3.0


class TestBadDaySchedule:
    def test_same_seed_same_spec(self):
        kwargs = dict(num_replicas=4, horizon_s=1.0, seed=42, crashes=2,
                      preemptions=2, brownouts=2)
        assert bad_day_schedule(**kwargs) == bad_day_schedule(**kwargs)

    def test_different_seed_different_spec(self):
        a = bad_day_schedule(num_replicas=4, horizon_s=1.0, seed=1)
        b = bad_day_schedule(num_replicas=4, horizon_s=1.0, seed=2)
        assert a != b

    def test_counts_and_time_window(self):
        spec = bad_day_schedule(
            num_replicas=3, horizon_s=2.0, seed=0, crashes=3, preemptions=2,
            brownouts=1,
        )
        assert len(spec.crashes) == 3
        assert len(spec.preemptions) == 2
        assert len(spec.brownouts) == 1
        for t in (
            [c.time_s for c in spec.crashes]
            + [p.time_s for p in spec.preemptions]
            + [b.start_s for b in spec.brownouts]
        ):
            assert 0.15 * 2.0 <= t < 0.75 * 2.0
        for fault in spec.crashes + spec.preemptions + spec.brownouts:
            assert 0 <= fault.replica < 3

    def test_validation(self):
        with pytest.raises(ValueError):
            bad_day_schedule(num_replicas=0, horizon_s=1.0)
        with pytest.raises(ValueError):
            bad_day_schedule(num_replicas=1, horizon_s=0.0)

    def test_retry_and_recover_pass_through(self):
        pol = RetryPolicy(max_attempts=5)
        spec = bad_day_schedule(
            num_replicas=2, horizon_s=1.0, retry=pol, recover=False
        )
        assert spec.retry == pol
        assert spec.recover is False


class TestChaosSerde:
    def test_bad_day_preset_roundtrips(self):
        s = get_scenario("fleet-bad-day-smoke")
        assert s.chaos is not None and s.chaos.has_faults
        assert Scenario.from_json(s.to_json()) == s

    def test_unknown_chaos_field_rejected(self):
        d = get_scenario("fleet-bad-day-smoke").to_dict()
        d["chaos"]["blast_radius"] = 3
        with pytest.raises(ValueError, match="blast_radius"):
            Scenario.from_dict(d)

    def test_unknown_nested_fault_field_rejected(self):
        d = get_scenario("fleet-bad-day-smoke").to_dict()
        d["chaos"]["crashes"][0]["severity"] = "high"
        with pytest.raises(ValueError, match="severity"):
            Scenario.from_dict(d)

    def test_chaos_requires_fleet(self):
        serve = get_scenario("serve-poisson-smoke")
        with pytest.raises(ValueError, match="fleet"):
            dataclasses.replace(serve, chaos=ChaosSpec())

    def test_chaos_declared_twice_rejected(self):
        s = get_scenario("fleet-bad-day-smoke")
        assert s.fleet is not None and s.chaos is not None
        with pytest.raises(ValueError, match="twice"):
            dataclasses.replace(
                s, fleet=dataclasses.replace(s.fleet, chaos=s.chaos)
            )

    def test_fleet_config_chaos_typechecked(self):
        with pytest.raises(TypeError):
            FleetConfig(chaos={"crashes": []})


class TestLifecycle:
    def test_legal_paths(self):
        # construction itself exercises PENDING -> BOOTING
        r = _replica(ReplicaState.BOOTING)
        r.transition_to(ReplicaState.RUNNING)
        r.transition_to(ReplicaState.DRAINING)
        r.transition_to(ReplicaState.STOPPED)
        assert r.state is ReplicaState.STOPPED

    def test_every_state_can_fail_except_terminals_and_pending(self):
        for origin in (ReplicaState.BOOTING, ReplicaState.RUNNING, ReplicaState.DRAINING):
            assert ReplicaState.FAILED in STATE_TRANSITIONS[origin]
        assert STATE_TRANSITIONS[ReplicaState.FAILED] == ()
        assert STATE_TRANSITIONS[ReplicaState.STOPPED] == ()

    def test_illegal_transition_raises(self):
        r = _replica(ReplicaState.RUNNING)
        with pytest.raises(RuntimeError, match="illegal replica transition"):
            r.transition_to(ReplicaState.BOOTING)
        r.transition_to(ReplicaState.FAILED)
        with pytest.raises(RuntimeError, match="failed -> running"):
            r.transition_to(ReplicaState.RUNNING)

    def test_active_alias_is_running(self):
        assert ReplicaState.ACTIVE is ReplicaState.RUNNING
        assert _replica(ReplicaState.RUNNING).routable

    def test_failed_replica_rejects_traffic(self):
        r = _replica(ReplicaState.RUNNING)
        r.transition_to(ReplicaState.FAILED)
        assert not r.routable
        with pytest.raises(RuntimeError, match="cannot enqueue"):
            r.enqueue(object())


class TestZeroDenominators:
    """Regression pins: empty/zero aggregations report their documented values."""

    def test_empty_result_reports_ideal_availability(self):
        r = _empty_result()
        assert r.offered == 0
        assert r.availability == 1.0
        assert r.goodput_rps == 0.0
        assert r.throughput_rps == 0.0
        assert r.shed_fraction == 0.0
        assert r.mean_time_to_recover_s == 0.0
        assert r.usd_per_million_tokens == 0.0

    def test_unrecovered_failures_do_not_divide(self):
        r = _empty_result(
            failures=(
                FailureRecord(0.1, 0, "crash", 2, 1, None),
                FailureRecord(0.2, 1, "preempt", 0, 0, None),
            )
        )
        assert r.mean_time_to_recover_s == 0.0

    def test_mttr_averages_only_recovered(self):
        r = _empty_result(
            failures=(
                FailureRecord(0.1, 0, "crash", 2, 1, 0.3),
                FailureRecord(0.2, 1, "preempt", 0, 0, None),
            )
        )
        assert r.mean_time_to_recover_s == pytest.approx(0.2)

    def test_zero_life_replica_utilization(self):
        # a replica that fails the instant it boots has an empty routable
        # lifetime; utilization must be 0.0, not a ZeroDivisionError
        r = _replica(ReplicaState.RUNNING, booted_at_s=1.0)
        r.transition_to(ReplicaState.FAILED)
        r.stopped_at_s = 1.0
        stats = r.stats(end_s=5.0)
        assert stats.utilization == 0.0
        assert stats.final_state == "failed"


class TestSweepErrorSurfacing:
    def test_worker_failure_names_the_scenario(self, monkeypatch):
        import repro.scenarios.runner as runner_mod

        def boom(s, recorder=None):
            raise RuntimeError("deliberate test failure")

        monkeypatch.setattr(runner_mod, "_run_serving", boom)
        with pytest.raises(SweepError) as excinfo:
            run_sweep(["serve-poisson-smoke"], processes=1)
        err = excinfo.value
        assert err.scenario_name == "serve-poisson-smoke"
        # the spec JSON travels with the error, ready for `repro run`
        spec = json.loads(err.spec_json)
        assert spec["name"] == "serve-poisson-smoke"
        assert "deliberate test failure" in err.details
        text = str(err)
        assert "serve-poisson-smoke" in text
        assert "deliberate test failure" in text

    def test_pickles_across_pool_boundary(self):
        err = SweepError("arm-3", '{"name": "arm-3"}', "Traceback: boom")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.scenario_name == "arm-3"
        assert clone.spec_json == '{"name": "arm-3"}'
        assert clone.details == "Traceback: boom"
        assert "arm-3" in str(clone)

    def test_healthy_sweep_unaffected(self):
        reports = run_sweep(["serve-poisson-smoke"], processes=1)
        assert len(reports) == 1 and reports[0].completed > 0


class TestChaosThroughRunnerFacade:
    def test_scenario_chaos_reaches_the_engine(self):
        from repro.scenarios import run

        report = run("fleet-bad-day-smoke", keep_raw=True)
        assert report.failures >= 1
        assert report.retries > 0
        assert 0.0 < report.availability <= 1.0
        assert report.goodput_rps > 0.0
        assert report.mean_time_to_recover_s > 0.0
        # the SimReport chaos account mirrors the raw FleetResult
        raw = report.raw
        assert report.failures == len(raw.failures)
        assert report.lost == len(raw.lost)
        assert report.retries == raw.retries

    def test_report_roundtrips_chaos_fields(self):
        from repro.scenarios import run
        from repro.scenarios.report import SimReport

        report = run("fleet-bad-day-smoke", keep_raw=False)
        clone = SimReport.from_json(report.to_json())
        assert clone == report
        assert clone.availability == report.availability
