"""Unit tests for repro.model.attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.attention import CausalSelfAttention, KVCache


@pytest.fixture
def attn() -> CausalSelfAttention:
    return CausalSelfAttention(d_model=16, num_heads=4, rng=np.random.default_rng(0))


class TestKVCache:
    def test_empty(self):
        cache = KVCache.empty(2, 4, 8)
        assert cache.seq_len == 0

    def test_append_grows(self):
        cache = KVCache.empty(2, 4, 8)
        cache.append(np.zeros((2, 4, 3, 8)), np.zeros((2, 4, 3, 8)))
        assert cache.seq_len == 3
        cache.append(np.zeros((2, 4, 1, 8)), np.zeros((2, 4, 1, 8)))
        assert cache.seq_len == 4

    def test_append_shape_mismatch(self):
        cache = KVCache.empty(2, 4, 8)
        with pytest.raises(ValueError):
            cache.append(np.zeros((2, 4, 1, 8)), np.zeros((2, 4, 2, 8)))
        with pytest.raises(ValueError):
            cache.append(np.zeros((1, 4, 1, 8)), np.zeros((1, 4, 1, 8)))


class TestAttention:
    def test_output_shape(self, attn):
        x = np.random.default_rng(1).normal(size=(2, 5, 16))
        out, cache = attn(x)
        assert out.shape == (2, 5, 16)
        assert cache.seq_len == 5

    def test_causality(self, attn):
        """Changing a later token must not affect earlier outputs."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 6, 16))
        out1, _ = attn(x)
        x2 = x.copy()
        x2[0, 5] += 10.0
        out2, _ = attn(x2)
        assert np.allclose(out1[0, :5], out2[0, :5])
        assert not np.allclose(out1[0, 5], out2[0, 5])

    def test_incremental_matches_full(self, attn):
        """Token-by-token decoding with cache equals one full pass."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 4, 16))
        full, _ = attn(x)

        cache = None
        steps = []
        for t in range(4):
            out, cache = attn(x[:, t : t + 1], cache)
            steps.append(out)
        incremental = np.concatenate(steps, axis=1)
        assert np.allclose(full, incremental, atol=1e-10)

    def test_rejects_bad_dims(self, attn):
        with pytest.raises(ValueError):
            attn(np.zeros((2, 3, 8)))  # wrong d_model
        with pytest.raises(ValueError):
            attn(np.zeros((3, 16)))  # missing batch dim

    def test_invalid_head_split(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(d_model=10, num_heads=4, rng=np.random.default_rng(0))

    def test_batch_independence(self, attn):
        """Rows of the batch must not attend to each other."""
        rng = np.random.default_rng(4)
        a = rng.normal(size=(1, 3, 16))
        b = rng.normal(size=(1, 3, 16))
        both = np.concatenate([a, b], axis=0)
        out_both, _ = attn(both)
        out_a, _ = attn(a)
        assert np.allclose(out_both[0], out_a[0], atol=1e-12)
