"""Unit tests for repro.cluster.collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.collectives import (
    allgather_cost,
    allreduce_cost,
    alltoall_cost,
    alltoall_matrix,
    broadcast_cost,
)
from repro.cluster.topology import Tier, Topology
from repro.config import ClusterConfig


@pytest.fixture
def topo() -> Topology:
    return Topology(ClusterConfig(num_nodes=2, gpus_per_node=2))


@pytest.fixture
def big_topo() -> Topology:
    return Topology(ClusterConfig(num_nodes=4, gpus_per_node=4))


class TestAlltoallMatrix:
    def test_zero_traffic_costs_nothing(self, topo):
        res = alltoall_matrix(topo, np.zeros((4, 4)))
        assert res.time_s == 0.0
        assert res.cross_gpu_bytes == 0.0

    def test_diagonal_only_is_free(self, topo):
        traffic = np.zeros((4, 4))
        np.fill_diagonal(traffic, 1e6)
        res = alltoall_matrix(topo, traffic)
        assert res.time_s == 0.0
        assert res.bytes_by_tier[Tier.LOCAL] == pytest.approx(4e6)

    def test_monotone_in_bytes(self, topo):
        t1 = np.full((4, 4), 1e5)
        np.fill_diagonal(t1, 0)
        t2 = t1 * 10
        r1, r2 = alltoall_matrix(topo, t1), alltoall_matrix(topo, t2)
        assert r2.time_s > r1.time_s

    def test_inter_node_dearer_than_intra(self, topo):
        intra = np.zeros((4, 4))
        intra[0, 1] = 1e7  # same node
        inter = np.zeros((4, 4))
        inter[0, 2] = 1e7  # cross node
        assert alltoall_matrix(topo, inter).time_s > alltoall_matrix(topo, intra).time_s

    def test_single_gpu_all_local(self):
        topo = Topology(ClusterConfig(num_nodes=1, gpus_per_node=1))
        res = alltoall_matrix(topo, np.array([[123.0]]))
        assert res.time_s == 0.0
        assert res.bytes_by_tier[Tier.LOCAL] == 123.0

    def test_bytes_classified(self, topo):
        traffic = np.zeros((4, 4))
        traffic[0, 1] = 100.0  # intra
        traffic[0, 2] = 200.0  # inter
        res = alltoall_matrix(topo, traffic)
        assert res.bytes_by_tier[Tier.INTRA] == 100.0
        assert res.bytes_by_tier[Tier.INTER] == 200.0
        assert res.inter_node_bytes == 200.0

    def test_rounds(self, topo):
        traffic = np.full((4, 4), 1.0)
        res = alltoall_matrix(topo, traffic)
        assert res.rounds == 3

    def test_rejects_negative(self, topo):
        t = np.zeros((4, 4))
        t[1, 0] = -1
        with pytest.raises(ValueError):
            alltoall_matrix(topo, t)

    def test_rejects_wrong_shape(self, topo):
        with pytest.raises(ValueError):
            alltoall_matrix(topo, np.zeros((2, 2)))


class TestAlltoallUniform:
    def test_matches_matrix_version(self, topo):
        traffic = np.full((4, 4), 1e6)
        np.fill_diagonal(traffic, 0.0)
        assert alltoall_cost(topo, 1e6).time_s == pytest.approx(
            alltoall_matrix(topo, traffic).time_s
        )

    def test_scales_with_gpu_count(self, topo, big_topo):
        small = alltoall_cost(topo, 1e6)
        big = alltoall_cost(big_topo, 1e6)
        assert big.time_s > small.time_s

    def test_rejects_negative(self, topo):
        with pytest.raises(ValueError):
            alltoall_cost(topo, -1.0)


class TestAllgather:
    def test_uniform_contributions(self, topo):
        res = allgather_cost(topo, 1e6)
        assert res.time_s > 0
        assert res.rounds == 3
        # ring moves every contribution across G-1 links
        assert res.total_bytes == pytest.approx(3 * 4e6)

    def test_heterogeneous_contributions(self, topo):
        res = allgather_cost(topo, np.array([1e6, 0.0, 0.0, 0.0]))
        assert res.total_bytes == pytest.approx(3e6)

    def test_zero_contribution_free(self, topo):
        res = allgather_cost(topo, 0.0)
        assert res.time_s == 0.0

    def test_single_gpu(self):
        topo = Topology(ClusterConfig(num_nodes=1, gpus_per_node=1))
        assert allgather_cost(topo, 1e6).time_s == 0.0

    def test_no_dearer_than_equivalent_alltoall(self, topo):
        """AllGather of n bytes/rank moves the same volume as Alltoall of n
        per peer; the ring schedule should never cost more than the pairwise
        exchange (both are gated by the slowest tier each round)."""
        ag = allgather_cost(topo, 1e6)
        a2a = alltoall_cost(topo, 1e6)
        assert ag.time_s <= a2a.time_s + 1e-12

    def test_rejects_negative(self, topo):
        with pytest.raises(ValueError):
            allgather_cost(topo, np.array([1.0, -1.0, 0.0, 0.0]))


class TestAllreduce:
    def test_positive_cost(self, topo):
        assert allreduce_cost(topo, 1e6).time_s > 0

    def test_steps(self, topo):
        assert allreduce_cost(topo, 1e6).rounds == 6  # 2*(G-1)

    def test_zero_free(self, topo):
        assert allreduce_cost(topo, 0.0).time_s == 0.0

    def test_rejects_negative(self, topo):
        with pytest.raises(ValueError):
            allreduce_cost(topo, -5.0)


class TestBroadcast:
    def test_log_rounds(self, big_topo):
        res = broadcast_cost(big_topo, 1e6)
        assert res.rounds == 4  # ceil(log2 16)

    def test_all_ranks_receive(self, topo):
        res = broadcast_cost(topo, 1e6)
        # G-1 receivers, each gets the full payload
        assert res.total_bytes == pytest.approx(3e6)

    def test_root_out_of_range(self, topo):
        with pytest.raises(IndexError):
            broadcast_cost(topo, 1.0, root=4)

    def test_root_relabelling(self, topo):
        r0 = broadcast_cost(topo, 1e6, root=0)
        r2 = broadcast_cost(topo, 1e6, root=2)
        assert r0.total_bytes == pytest.approx(r2.total_bytes)


class TestCollectiveResult:
    def test_combine_adds(self, topo):
        a = alltoall_cost(topo, 1e5)
        b = allgather_cost(topo, 1e5)
        c = a.combine(b)
        assert c.time_s == pytest.approx(a.time_s + b.time_s)
        assert c.total_bytes == pytest.approx(a.total_bytes + b.total_bytes)
        assert c.rounds == a.rounds + b.rounds
