"""Unit tests for repro.model.moe_layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GatingKind
from repro.model.moe_layer import MoELayer


@pytest.fixture
def layer() -> MoELayer:
    return MoELayer(4, 8, 16, np.random.default_rng(0))


class TestMoELayer:
    def test_forward_shape(self, layer):
        x = np.random.default_rng(1).normal(size=(10, 8))
        y, routing = layer(x)
        assert y.shape == x.shape
        assert routing.num_tokens == 10

    def test_output_matches_selected_expert(self, layer):
        """Top-1 MoE output must equal the chosen expert's FFN output."""
        x = np.random.default_rng(2).normal(size=(6, 8))
        y, routing = layer(x)
        for t in range(6):
            e = int(routing.top1[t])
            expected = layer.experts.forward_expert(e, x[t : t + 1])[0]
            assert np.allclose(y[t], expected)

    def test_top2_combines(self):
        layer = MoELayer(4, 8, 16, np.random.default_rng(0), gating=GatingKind.TOP2)
        x = np.random.default_rng(3).normal(size=(5, 8))
        y, routing = layer(x)
        assert routing.k == 2
        t = 0
        e0, e1 = routing.experts[t]
        w0, w1 = routing.weights[t]
        expected = (
            w0 * layer.experts.forward_expert(int(e0), x[t : t + 1])[0]
            + w1 * layer.experts.forward_expert(int(e1), x[t : t + 1])[0]
        )
        assert np.allclose(y[t], expected)

    def test_routing_deterministic(self, layer):
        x = np.random.default_rng(4).normal(size=(8, 8))
        _, r1 = layer(x)
        _, r2 = layer(x)
        assert np.array_equal(r1.top1, r2.top1)


class TestCapacity:
    def test_unbounded_by_default(self, layer):
        assert layer.capacity_factor == 0.0

    def test_capacity_reroutes_top2_overflow(self):
        """With tight capacity and top-2 gating, overflow tokens move to
        their second expert when it has room."""
        rng = np.random.default_rng(5)
        layer = MoELayer(
            4, 8, 16, rng, gating=GatingKind.TOP2, capacity_factor=1.0
        )
        x = np.random.default_rng(6).normal(size=(64, 8))
        _, routing = layer(x)
        counts = np.bincount(routing.top1, minlength=4)
        # capacity enforcement may still overflow when both choices are full,
        # but the spread must be no worse than ungated routing
        raw = layer.gate(x)
        raw_counts = np.bincount(raw.top1, minlength=4)
        assert counts.max() <= raw_counts.max()

    def test_capacity_noop_when_under_limit(self):
        layer = MoELayer(4, 8, 16, np.random.default_rng(7), capacity_factor=100.0)
        x = np.random.default_rng(8).normal(size=(10, 8))
        _, routing = layer(x)
        raw = layer.gate(x)
        assert np.array_equal(routing.top1, raw.top1)
