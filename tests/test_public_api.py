"""Guard tests on the public API surface and repository consistency.

These catch the drift that silently breaks downstream users: ``__all__``
entries that don't resolve, documented bench targets that don't exist, and
solver registry entries without implementations.
"""

from __future__ import annotations

import importlib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

PACKAGES = [
    "repro",
    "repro.cluster",
    "repro.model",
    "repro.trace",
    "repro.core",
    "repro.core.placement",
    "repro.engine",
    "repro.fleet",
    "repro.training",
    "repro.analysis",
]


class TestAllExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), f"{package} has no __all__"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.__all__ lists missing {name!r}"

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_quickstart_docstring_imports_work(self):
        """The README/module quickstart names must exist on the package."""
        import repro

        for name in (
            "ExFlowOptimizer",
            "InferenceConfig",
            "paper_model",
            "wilkes3",
            "MarkovRoutingModel",
            "compare_modes",
            "make_decode_workload",
        ):
            assert hasattr(repro, name)


class TestSolverRegistry:
    def test_registry_covers_docs(self):
        from repro.core.placement import SOLVERS, solve_placement  # noqa: F401

        # every advertised solver has an implementation reachable by name
        import numpy as np

        from repro.config import ClusterConfig
        from repro.trace.markov import MarkovRoutingModel

        trace = MarkovRoutingModel.with_affinity(4, 3, 0.5).sample(
            200, np.random.default_rng(0)
        )
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=2)
        for strategy in SOLVERS:
            kwargs = {"time_limit_s": 5.0} if strategy == "ilp-joint" else {}
            p = solve_placement(strategy, trace, cluster, **kwargs)
            assert p.num_gpus == 2


class TestDocsConsistency:
    def test_design_bench_targets_exist(self):
        """Every bench file DESIGN.md names must exist in benchmarks/."""
        design = (REPO_ROOT / "DESIGN.md").read_text()
        import re

        for name in re.findall(r"bench_[a-z0-9_]+\.py", design):
            assert (REPO_ROOT / "benchmarks" / name).exists(), f"missing {name}"

    def test_experiments_bench_targets_exist(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        import re

        for name in re.findall(r"bench_[a-z0-9_]+\.py", experiments):
            assert (REPO_ROOT / "benchmarks" / name).exists(), f"missing {name}"

    def test_every_bench_documented(self):
        """Every benchmark file appears in EXPERIMENTS.md or DESIGN.md."""
        docs = (REPO_ROOT / "EXPERIMENTS.md").read_text() + (
            REPO_ROOT / "DESIGN.md"
        ).read_text()
        for path in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
            assert path.name in docs, f"{path.name} is undocumented"

    def test_examples_exist_and_have_docstrings(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert (REPO_ROOT / "examples" / "quickstart.py").exists()
        for path in examples:
            assert path.read_text().lstrip().startswith('"""'), f"{path.name} undocumented"
