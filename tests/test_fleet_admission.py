"""Unit tests for SLO-aware admission control."""

from __future__ import annotations

import pytest

from repro.config import FleetConfig
from repro.core.placement.vanilla import vanilla_placement
from repro.fleet.admission import (
    AdmissionController,
    PriorityClass,
    default_priority_classes,
)
from repro.fleet.replica import Replica
from repro.fleet.requests import FleetRequest


def _replica(max_batch: int = 8) -> Replica:
    return Replica(
        replica_id=0,
        placement=vanilla_placement(4, 8, 4),
        regime=0,
        max_batch_requests=max_batch,
        num_gpus=4,
    )


def _controller(slo_s: float = 1.0, batch_slo_s: float = 10.0, **kwargs):
    classes = (
        PriorityClass("interactive", slo_s, 0),
        PriorityClass("batch", batch_slo_s, 1),
    )
    return AdmissionController(classes, **kwargs)


def _req(priority: int = 0, generate_len: int = 10) -> FleetRequest:
    return FleetRequest(0, 0.0, 8, generate_len, priority=priority)


class TestPriorityClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityClass("x", 0.0, 0)
        with pytest.raises(ValueError):
            PriorityClass("x", 1.0, -1)

    def test_defaults_from_config(self):
        fleet = FleetConfig(slo_ms=250.0, batch_slo_ms=2500.0)
        classes = default_priority_classes(fleet)
        assert [c.name for c in classes] == ["interactive", "batch"]
        assert classes[0].slo_s == pytest.approx(0.25)
        assert classes[1].slo_s == pytest.approx(2.5)


class TestControllerConstruction:
    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            AdmissionController((PriorityClass("a", 1.0, 0), PriorityClass("b", 1.0, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AdmissionController(())

    def test_rejects_bad_knobs(self):
        classes = (PriorityClass("a", 1.0, 0),)
        with pytest.raises(ValueError):
            AdmissionController(classes, shed_slack=0.0)
        with pytest.raises(ValueError):
            AdmissionController(classes, max_queue_per_replica=0)

    def test_from_config(self):
        fleet = FleetConfig(shed_slack=1.5, max_queue_per_replica=32)
        ctrl = AdmissionController.from_config(fleet)
        assert ctrl.shed_slack == 1.5
        assert ctrl.max_queue_per_replica == 32


class TestPrediction:
    def test_cold_replica_predicts_nothing(self):
        assert _controller().predicted_latency_s(_replica(), _req()) is None

    def test_service_plus_queueing(self):
        r = _replica(max_batch=8)
        r.est_step_s = 0.01
        ctrl = _controller()
        # empty queue: pure service = 10 steps x 10ms
        assert ctrl.predicted_latency_s(r, _req()) == pytest.approx(0.1)
        for _ in range(16):
            r.enqueue(_req())
        # 16 queued / cap 8 => two full drain cycles of queueing ahead
        assert ctrl.predicted_latency_s(r, _req()) == pytest.approx(0.1 + 2 * 0.1)

    def test_admits_when_cold(self):
        assert _controller().assess(_req(), _replica(), 0.0) is None


class TestShedding:
    def test_sheds_on_deadline(self):
        r = _replica()
        r.est_step_s = 0.2  # service alone = 2s > slo 1s
        assert _controller().assess(_req(), r, 0.0) == "deadline"

    def test_batch_class_tolerates_more(self):
        r = _replica()
        r.est_step_s = 0.2
        ctrl = _controller()
        assert ctrl.assess(_req(priority=0), r, 0.0) == "deadline"
        assert ctrl.assess(_req(priority=1), r, 0.0) is None  # 2s < 10s

    def test_shed_slack_scales_deadline(self):
        r = _replica()
        r.est_step_s = 0.15  # predicted 1.5s
        assert _controller(shed_slack=2.0).assess(_req(), r, 0.0) is None
        assert _controller(shed_slack=1.0).assess(_req(), r, 0.0) == "deadline"

    def test_queue_cap_is_hard(self):
        r = _replica()
        ctrl = _controller(max_queue_per_replica=4)
        for _ in range(4):
            r.enqueue(_req())
        # even a cold replica (no prediction) sheds once the queue is full
        assert ctrl.assess(_req(), r, 0.0) == "queue-full"

    def test_slo_met(self):
        ctrl = _controller(slo_s=1.0, batch_slo_s=10.0)
        assert ctrl.slo_met(_req(priority=0), 0.9)
        assert not ctrl.slo_met(_req(priority=0), 1.1)
        assert ctrl.slo_met(_req(priority=1), 5.0)

    def test_overflow_priority_maps_to_last_class(self):
        ctrl = _controller()
        assert ctrl.class_of(_req(priority=7)).name == "batch"


class TestBatchAssessment:
    """The vectorized admission path must mirror scalar ``assess`` exactly."""

    def _loaded_replicas(self):
        cold = _replica()  # est None -> admit unless queue-full
        slow = _replica()
        slow.est_step_s = 0.2  # 10-step request predicts 2s
        full = _replica()
        for _ in range(300):
            full.enqueue(_req())
        return [cold, slow, full]

    def test_matches_scalar_per_pair(self):
        ctrl = _controller()
        replicas = self._loaded_replicas()
        requests = [_req(priority=p, generate_len=g) for p in (0, 1) for g in (1, 10)]
        pairs = [(q, r) for q in requests for r in replicas]
        qs = [q for q, _ in pairs]
        rs = [r for _, r in pairs]
        batch = ctrl.assess_batch(qs, rs)
        scalar = [ctrl.assess(q, r, 0.0) for q, r in pairs]
        assert batch == scalar
        assert set(batch) == {None, "deadline", "queue-full"}

    def test_queue_full_wins_over_deadline(self):
        ctrl = _controller(max_queue_per_replica=4)
        r = _replica()
        r.est_step_s = 10.0  # would shed on deadline too
        for _ in range(4):
            r.enqueue(_req())
        assert ctrl.assess_batch([_req()], [r]) == ["queue-full"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one routed replica per request"):
            _controller().assess_batch([_req()], [])
