"""Unit tests for repro.training (trainer, balance, evolution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training.balance import (
    entropy_balance,
    expert_share,
    load_imbalance,
    trace_balance_series,
)
from repro.training.evolution import track_affinity_evolution
from repro.training.trainer import GateStackTrainer, TrainerConfig
from repro.trace.datasets import make_corpus
from repro.trace.events import RoutingTrace


class TestBalanceMetrics:
    def test_expert_share_sums_to_one(self):
        share = expert_share(np.array([0, 1, 1, 2]), 4)
        assert share.sum() == pytest.approx(1.0)
        assert share.tolist() == [0.25, 0.5, 0.25, 0.0]

    def test_empty_share(self):
        assert expert_share(np.array([], dtype=int), 4).tolist() == [0.0] * 4

    def test_imbalance_uniform(self):
        assert load_imbalance(np.arange(8), 8) == pytest.approx(1.0)

    def test_imbalance_collapsed(self):
        assert load_imbalance(np.zeros(100, dtype=int), 8) == pytest.approx(8.0)

    def test_entropy_balance_bounds(self):
        assert entropy_balance(np.arange(8), 8) == pytest.approx(1.0)
        assert entropy_balance(np.zeros(10, dtype=int), 8) == 0.0

    def test_trace_balance_series(self):
        trace = RoutingTrace(np.zeros((10, 3), dtype=int), num_experts=4)
        series = trace_balance_series(trace)
        assert series.shape == (3,)
        assert (series == 4.0).all()


@pytest.fixture
def trainer() -> GateStackTrainer:
    corpus = make_corpus("pile", vocab_size=128, num_topics=8)
    config = TrainerConfig(num_experts=8, num_layers=3, batch_tokens=128, seed=1)
    return GateStackTrainer(config, corpus)


class TestTrainer:
    def test_step_returns_diagnostics(self, trainer):
        out = trainer.step()
        assert set(out) == {"iteration", "balance_loss", "confidence"}
        assert out["iteration"] == 1.0

    def test_train_advances_iteration(self, trainer):
        trainer.train(5)
        assert trainer.iteration == 5

    def test_probe_trace_shape(self, trainer):
        trace = trainer.probe_trace(256)
        assert trace.num_tokens == 256
        assert trace.num_layers == 3
        assert trace.num_experts == 8

    def test_early_collapse_then_balance(self, trainer):
        """The paper's Fig 11 narrative: routing becomes strongly skewed in
        the first iterations, then the balance loss spreads load."""
        imbalances = []
        for _ in range(20):
            trainer.train(10)
            imbalances.append(load_imbalance(trainer.probe_trace(512).paths[:, -1], 8))
        early_peak = max(imbalances[:5])  # iterations 10-50
        late = min(imbalances[-3:])  # iterations 180-200
        assert early_peak > 2.0  # pronounced early skew
        assert late < early_peak  # balance recovers

    def test_hidden_states_deterministic(self, trainer):
        tokens = np.arange(10)
        a = trainer.hidden_states(tokens)
        b = trainer.hidden_states(tokens)
        assert all(np.array_equal(x, y) for x, y in zip(a, b, strict=True))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TrainerConfig(num_experts=1, num_layers=3)
        with pytest.raises(ValueError):
            TrainerConfig(num_experts=4, num_layers=3, lr=0.0)

    def test_negative_iterations_rejected(self, trainer):
        with pytest.raises(ValueError):
            trainer.train(-1)


class TestEvolution:
    def test_timeline_shapes(self):
        timeline = track_affinity_evolution(
            num_experts=8, num_layers=3, total_iterations=40, checkpoints=5,
            probe_tokens=256,
        )
        assert timeline.num_checkpoints >= 2
        assert timeline.iterations[0] == 0
        assert timeline.iterations[-1] == 40
        assert timeline.last_layer_share.shape[1] == 8
        assert ((timeline.affinity >= 0) & (timeline.affinity <= 1)).all()

    def test_affinity_recovers(self):
        """Fig 12's claim: after the balancing dip, affinity climbs again."""
        timeline = track_affinity_evolution(
            num_experts=8, num_layers=3, total_iterations=150, checkpoints=8,
            probe_tokens=512, seed=2,
        )
        assert timeline.affinity_increased_overall()
