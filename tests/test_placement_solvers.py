"""Unit tests for the placement solvers (vanilla/greedy/ilp/staged/local)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.placement.base import placement_locality
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.ilp import (
    assignment_solve,
    chain_objective,
    ilp_placement,
    joint_ilp_placement,
)
from repro.core.placement.local_search import local_search_placement
from repro.core.placement.registry import SOLVERS, solve_placement
from repro.core.placement.staged import staged_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel


def _weights(trace):
    return [trace.transition_counts(j).astype(float) for j in range(trace.num_layers - 1)]


class TestVanilla:
    def test_contiguous_blocks(self):
        p = vanilla_placement(3, 8, 4)
        assert p.gpu_of[0].tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_same_every_layer(self):
        p = vanilla_placement(5, 8, 2)
        assert (p.gpu_of == p.gpu_of[0]).all()

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            vanilla_placement(2, 6, 4)


class TestAssignmentSolve:
    def test_identity_benefit(self):
        """Diagonal benefit -> each expert goes to its own column group."""
        benefit = np.eye(4)
        groups = assignment_solve(benefit, 4)
        assert groups.tolist() == [0, 1, 2, 3]

    def test_capacity_respected(self):
        benefit = np.zeros((8, 2))
        benefit[:, 0] = 1.0  # everyone prefers group 0
        groups = assignment_solve(benefit, 2)
        assert np.bincount(groups, minlength=2).tolist() == [4, 4]

    def test_maximises_total_benefit(self):
        rng = np.random.default_rng(0)
        benefit = rng.random((6, 3))
        groups = assignment_solve(benefit, 3)
        got = benefit[np.arange(6), groups].sum()
        # brute-force optimum over all balanced assignments
        from itertools import permutations

        best = 0.0
        for perm in permutations(range(6)):
            g = np.empty(6, dtype=int)
            for slot, expert in enumerate(perm):
                g[expert] = slot // 2
            best = max(best, benefit[np.arange(6), g].sum())
        assert got == pytest.approx(best)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            assignment_solve(np.zeros((4, 3)), 2)
        with pytest.raises(ValueError):
            assignment_solve(np.zeros((5, 2)), 2)


class TestChainObjective:
    def test_counts_kept_mass(self):
        gpu_of = np.array([[0, 1], [0, 1]])
        w = [np.array([[3.0, 1.0], [2.0, 5.0]])]
        # kept: (0->0) 3 and (1->1) 5
        assert chain_objective(gpu_of, w) == 8.0


@pytest.fixture
def chain_trace():
    """Deterministic cyclic-shift routing: expert i -> i+1 (mod E)."""
    e, L, n = 8, 4, 400
    start = np.tile(np.arange(e), n // e)
    paths = np.stack([(start + j) % e for j in range(L)], axis=1)
    return RoutingTrace(paths, num_experts=e)


class TestILPChain:
    def test_perfect_on_deterministic_chain(self, chain_trace):
        """A shift chain admits a zero-crossing placement; the solver must
        find it."""
        p = ilp_placement(chain_trace, num_gpus=4)
        stats = placement_locality(p, chain_trace)
        assert stats.gpu_stay_fraction == pytest.approx(1.0)

    def test_beats_vanilla_on_affinity(self, affinity_trace):
        ilp = ilp_placement(affinity_trace, num_gpus=4)
        van = vanilla_placement(affinity_trace.num_layers, affinity_trace.num_experts, 4)
        s_ilp = placement_locality(ilp, affinity_trace).gpu_stay_fraction
        s_van = placement_locality(van, affinity_trace).gpu_stay_fraction
        assert s_ilp > s_van + 0.15

    def test_valid_placement(self, affinity_trace):
        p = ilp_placement(affinity_trace, num_gpus=2)
        assert p.num_gpus == 2  # Placement validates balance on build

    def test_sweeps_never_hurt(self, affinity_trace):
        w = _weights(affinity_trace)
        p0 = ilp_placement(affinity_trace, num_gpus=4, sweeps=0)
        p3 = ilp_placement(affinity_trace, num_gpus=4, sweeps=3)
        assert chain_objective(p3.gpu_of, w) >= chain_objective(p0.gpu_of, w) - 1e-9

    def test_single_gpu_trivial(self, affinity_trace):
        p = ilp_placement(affinity_trace, num_gpus=1)
        assert (p.gpu_of == 0).all()

    def test_indivisible_rejected(self, affinity_trace):
        with pytest.raises(ValueError):
            ilp_placement(affinity_trace, num_gpus=3)


class TestJointILP:
    def test_matches_or_beats_chain(self):
        """On a small instance the joint ILP is exact: its objective must be
        >= the chained solver's."""
        model = MarkovRoutingModel.with_affinity(4, 3, 0.8, rng=np.random.default_rng(3))
        trace = model.sample(500, np.random.default_rng(4))
        w = _weights(trace)
        joint = joint_ilp_placement(trace, num_gpus=2)
        chain = ilp_placement(trace, num_gpus=2)
        assert chain_objective(joint.gpu_of, w) >= chain_objective(chain.gpu_of, w) - 1e-6

    def test_perfect_chain_instance(self, chain_trace):
        p = joint_ilp_placement(chain_trace, num_gpus=2)
        assert placement_locality(p, chain_trace).gpu_stay_fraction == pytest.approx(1.0)


class TestGreedy:
    def test_tied_benefits_assign_deterministically(self):
        """Regression: equal-benefit (expert, gpu) pairs must resolve by
        ascending flat index (stable sort), not by whatever order numpy's
        default introsort happens to produce on this version.

        The trace visits every (layer-0, layer-1) expert pair exactly once,
        so with the contiguous layer-0 seed every layer-1 expert receives
        identical mass from every GPU — all benefits tie.  Stable order then
        assigns expert i to GPU i // cap, i.e. the contiguous blocks."""
        e = 4
        pairs = np.array([(i, p) for i in range(e) for p in range(e)])
        trace = RoutingTrace(pairs, num_experts=e)
        placement = greedy_placement(trace, num_gpus=2)
        assert placement.gpu_of[0].tolist() == [0, 0, 1, 1]
        assert placement.gpu_of[1].tolist() == [0, 0, 1, 1]

    def test_deterministic_across_calls(self, affinity_trace):
        a = greedy_placement(affinity_trace, num_gpus=4)
        b = greedy_placement(affinity_trace, num_gpus=4)
        assert np.array_equal(a.gpu_of, b.gpu_of)

    def test_valid_and_better_than_vanilla(self, affinity_trace):
        g = greedy_placement(affinity_trace, num_gpus=4)
        v = vanilla_placement(affinity_trace.num_layers, affinity_trace.num_experts, 4)
        s_g = placement_locality(g, affinity_trace).gpu_stay_fraction
        s_v = placement_locality(v, affinity_trace).gpu_stay_fraction
        assert s_g > s_v

    def test_ilp_at_least_greedy(self, affinity_trace):
        """The global solver should not lose to the local heuristic."""
        w = _weights(affinity_trace)
        g = greedy_placement(affinity_trace, num_gpus=4)
        i = ilp_placement(affinity_trace, num_gpus=4)
        assert chain_objective(i.gpu_of, w) >= chain_objective(g.gpu_of, w) - 1e-9


class TestLocalSearch:
    def test_never_worse_than_start(self, affinity_trace):
        w = _weights(affinity_trace)
        start = vanilla_placement(affinity_trace.num_layers, affinity_trace.num_experts, 4)
        refined = local_search_placement(affinity_trace, 4, start=start)
        assert chain_objective(refined.gpu_of, w) >= chain_objective(start.gpu_of, w)

    def test_improves_on_affinity(self, affinity_trace):
        start = vanilla_placement(affinity_trace.num_layers, affinity_trace.num_experts, 4)
        refined = local_search_placement(affinity_trace, 4, start=start)
        s0 = placement_locality(start, affinity_trace).gpu_stay_fraction
        s1 = placement_locality(refined, affinity_trace).gpu_stay_fraction
        assert s1 > s0

    def test_shape_mismatch_rejected(self, affinity_trace):
        bad = vanilla_placement(2, affinity_trace.num_experts, 4)
        with pytest.raises(ValueError):
            local_search_placement(affinity_trace, 4, start=bad)


class TestStaged:
    def test_valid_on_hierarchy(self, affinity_trace):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        p = staged_placement(affinity_trace, cluster)
        assert p.num_gpus == 4
        assert p.strategy == "staged"

    def test_prioritises_node_locality(self, affinity_trace):
        """Staged placement must match flat ILP on node-stay fraction
        (its stage-1 objective) while remaining balanced per GPU."""
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        staged = staged_placement(affinity_trace, cluster)
        flat = ilp_placement(affinity_trace, cluster.num_gpus)
        s_staged = placement_locality(staged, affinity_trace, cluster)
        s_flat = placement_locality(flat, affinity_trace, cluster)
        assert s_staged.node_stay_fraction >= s_flat.node_stay_fraction - 0.02

    def test_single_node_falls_back(self, affinity_trace):
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)
        p = staged_placement(affinity_trace, cluster)
        assert p.num_gpus == 4

    def test_one_gpu_per_node(self, affinity_trace):
        cluster = ClusterConfig(num_nodes=4, gpus_per_node=1)
        p = staged_placement(affinity_trace, cluster)
        assert p.num_gpus == 4

    @pytest.mark.parametrize(
        "shape", [(1, 4), (4, 1)], ids=["single-node", "one-gpu-per-node"]
    )
    def test_fallback_preserves_placement_metadata(self, affinity_trace, shape):
        """Both degenerate hierarchies must return a placement whose
        metadata matches the normal staged path: strategy provenance
        relabelled to 'staged', GPU count taken from the cluster, and the
        solved assignment identical to the flat chained solver's."""
        nodes, gpn = shape
        cluster = ClusterConfig(num_nodes=nodes, gpus_per_node=gpn)
        p = staged_placement(affinity_trace, cluster, sweeps=2)
        flat = ilp_placement(affinity_trace, cluster.num_gpus, sweeps=2)
        assert p.strategy == "staged"
        assert p.num_gpus == cluster.num_gpus
        assert np.array_equal(p.gpu_of, flat.gpu_of)
        # the relabel must not cost objective: same solve, different label
        w = _weights(affinity_trace)
        assert chain_objective(p.gpu_of, w) == chain_objective(flat.gpu_of, w)


class TestRegistry:
    def test_all_solvers_listed(self):
        assert set(SOLVERS) == {
            "vanilla",
            "greedy",
            "ilp",
            "ilp-joint",
            "staged",
            "local-search",
        }

    @pytest.mark.parametrize("strategy", ["vanilla", "greedy", "ilp", "staged", "local-search"])
    def test_solve_placement_dispatch(self, strategy, affinity_trace):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        p = solve_placement(strategy, affinity_trace, cluster)
        assert p.num_gpus == 4
        assert p.num_experts == affinity_trace.num_experts

    def test_unknown_strategy(self, affinity_trace):
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=2)
        with pytest.raises(ValueError):
            solve_placement("quantum", affinity_trace, cluster)
