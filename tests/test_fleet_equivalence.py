"""The tick engine against the event-heap oracle: exact FleetResult match.

The vectorized tick engine (:mod:`repro.fleet.engine`) exists for speed;
its *correctness* is defined entirely by
:func:`repro.fleet.reference.simulate_fleet_reference`.  Every scenario
here runs both engines on identical inputs and demands the full
:class:`~repro.fleet.result.FleetResult` match **exactly** — completed
and shed tuples (order included), latency/queue percentile stats, replica
accounts, scale events, SLO attainment, GPU-hour billing.  No tolerances:
the engines share rng consumption order and float expression order, so
any drift is a bug, not noise.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    GatingKind,
    ModelConfig,
    ServingConfig,
)
from repro.chaos import (
    BrownoutSpec,
    ChaosSpec,
    CrashSpec,
    PreemptSpec,
    RetryPolicy,
    bad_day_schedule,
)
from repro.fleet.requests import flash_crowd_arrivals
from repro.fleet.simulate import _simulate_fleet_cluster_serving

MODEL = ModelConfig(
    name="fleet-eq-test", num_layers=4, num_experts=8, d_model=64, num_heads=4
)
CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=2)
SERVING = ServingConfig(
    arrival="bursty",
    arrival_rate_rps=900.0,
    num_requests=120,
    generate_len=6,
    max_batch_requests=8,
    prompt_len=8,
    seed=0,
)

ROUTERS = ("round-robin", "jsq", "p2c", "affinity")


def run_both(fleet, model=MODEL, serving=SERVING, **kwargs):
    event = _simulate_fleet_cluster_serving(
        model, CLUSTER, serving, dataclasses.replace(fleet, engine="event"), **kwargs
    )
    tick = _simulate_fleet_cluster_serving(
        model, CLUSTER, serving, dataclasses.replace(fleet, engine="tick"), **kwargs
    )
    return event, tick


def assert_identical(event, tick):
    """Field-by-field first (for a readable diff), then the whole value."""
    assert tick.completed == event.completed
    assert tick.shed == event.shed
    assert tick.latency == event.latency
    assert tick.queue == event.queue
    assert tick.makespan_s == event.makespan_s
    assert tick.replicas == event.replicas
    assert tick.scale_events == event.scale_events
    assert tick.slo_attainment == event.slo_attainment
    assert tick.peak_replicas == event.peak_replicas
    assert tick.generated_tokens == event.generated_tokens
    assert tick.gpu_hours == event.gpu_hours
    assert tick.cost_usd == event.cost_usd
    assert tick.failures == event.failures
    assert tick.lost == event.lost
    assert tick.retries == event.retries
    assert tick == event


def assert_conserved(result, num_requests):
    """Every submitted request has exactly one terminal outcome."""
    done_ids = (
        [c.request.req_id for c in result.completed]
        + [s.request.req_id for s in result.shed]
        + [lo.request.req_id for lo in result.lost]
    )
    assert len(done_ids) == num_requests
    assert len(set(done_ids)) == num_requests


@pytest.mark.parametrize("router", ROUTERS)
def test_every_router_kind(router):
    fleet = FleetConfig(num_replicas=3, router=router, num_regimes=2)
    event, tick = run_both(fleet)
    assert event.served > 0
    assert_identical(event, tick)


@pytest.mark.parametrize("router", ROUTERS)
def test_overload_sheds_identically(router):
    overload = ServingConfig(
        arrival_rate_rps=50000.0,
        num_requests=400,
        generate_len=6,
        max_batch_requests=4,
        prompt_len=8,
        seed=3,
    )
    fleet = FleetConfig(
        num_replicas=2,
        router=router,
        num_regimes=2,
        slo_ms=0.5,
        batch_slo_ms=1.0,
        max_queue_per_replica=16,
    )
    event, tick = run_both(fleet, serving=overload)
    assert len(event.shed) > 0  # both queue-full and deadline paths exercised
    assert {s.reason for s in event.shed} & {"deadline", "queue-full"}
    assert_identical(event, tick)


def test_priority_classes():
    loaded = ServingConfig(
        arrival_rate_rps=20000.0,
        num_requests=250,
        generate_len=6,
        max_batch_requests=4,
        prompt_len=8,
        seed=4,
    )
    fleet = FleetConfig(
        num_replicas=2,
        router="jsq",
        interactive_fraction=0.3,
        slo_ms=10000.0,
        batch_slo_ms=20000.0,
        max_queue_per_replica=500,
    )
    event, tick = run_both(fleet, serving=loaded)
    assert {q.request.priority for q in event.completed} == {0, 1}
    assert_identical(event, tick)


@pytest.mark.parametrize("router", ("jsq", "affinity"))
def test_autoscale_flash_crowd(router):
    base = ServingConfig(
        arrival_rate_rps=15000.0,
        num_requests=600,
        generate_len=8,
        max_batch_requests=8,
        prompt_len=8,
        seed=5,
    )
    arrivals = flash_crowd_arrivals(base, 4.0, 0.005, 0.05)
    fleet = FleetConfig(
        num_replicas=2,
        router=router,
        num_regimes=2,
        autoscale=True,
        min_replicas=2,
        max_replicas=8,
        slo_ms=50.0,
        batch_slo_ms=500.0,
        autoscale_check_every_s=0.002,
        scale_up_queue_per_replica=4.0,
        scale_dwell_checks=2,
    )
    event, tick = run_both(fleet, serving=base, arrivals=arrivals)
    assert any(e.kind == "up" for e in event.scale_events)
    assert_identical(event, tick)


@pytest.mark.parametrize("migrate", (False, True))
def test_scale_down_and_migration(migrate):
    quiet = ServingConfig(
        arrival_rate_rps=20.0,
        num_requests=80,
        generate_len=4,
        max_batch_requests=8,
        prompt_len=8,
        seed=6,
    )
    fleet = FleetConfig(
        num_replicas=4,
        router="jsq",
        autoscale=True,
        min_replicas=1,
        max_replicas=4,
        autoscale_check_every_s=0.05,
        scale_down_queue_per_replica=0.5,
        scale_dwell_checks=2,
        migrate_on_drain=migrate,
    )
    event, tick = run_both(fleet, serving=quiet)
    assert any(e.kind == "down" for e in event.scale_events)
    assert_identical(event, tick)


def test_online_replacement():
    # fleet.replace seeds one replacer rng per replica from the shared
    # stream — creation order must match between engines
    fleet = FleetConfig(num_replicas=2, router="p2c", replace=True)
    event, tick = run_both(fleet)
    assert_identical(event, tick)


def test_top2_gating_secondary_paths():
    model = dataclasses.replace(MODEL, gating=GatingKind.TOP2)
    fleet = FleetConfig(num_replicas=2, router="jsq", num_regimes=2)
    event, tick = run_both(fleet, model=model)
    assert_identical(event, tick)


def test_vanilla_mode():
    fleet = FleetConfig(num_replicas=2, router="round-robin")
    event, tick = run_both(fleet, mode=ExecutionMode.VANILLA)
    assert_identical(event, tick)


class TestTelemetryEquivalence:
    """Recording must be invisible to results and identical across engines."""

    FLEET = FleetConfig(
        num_replicas=2,
        router="jsq",
        num_regimes=2,
        autoscale=True,
        min_replicas=1,
        max_replicas=4,
        slo_ms=50.0,
        batch_slo_ms=500.0,
        autoscale_check_every_s=0.002,
        scale_up_queue_per_replica=4.0,
        scale_down_queue_per_replica=0.5,
        scale_dwell_checks=2,
    )
    BUSY = ServingConfig(
        arrival_rate_rps=15000.0,
        num_requests=300,
        generate_len=6,
        max_batch_requests=8,
        prompt_len=8,
        seed=7,
    )

    def run_with_recorders(self):
        from repro.obs.recorder import TimelineRecorder

        rec_event = TimelineRecorder()
        rec_tick = TimelineRecorder()
        event = _simulate_fleet_cluster_serving(
            MODEL,
            CLUSTER,
            self.BUSY,
            dataclasses.replace(self.FLEET, engine="event"),
            recorder=rec_event,
        )
        tick = _simulate_fleet_cluster_serving(
            MODEL,
            CLUSTER,
            self.BUSY,
            dataclasses.replace(self.FLEET, engine="tick"),
            recorder=rec_tick,
        )
        return event, tick, rec_event, rec_tick

    def test_results_identical_with_recorder_attached(self):
        event, tick, _, _ = self.run_with_recorders()
        assert event.served > 0
        assert_identical(event, tick)

    def test_recording_is_observation_only(self):
        # a bare run (no recorder) must be bit-identical to a recorded one
        event, tick, _, _ = self.run_with_recorders()
        bare_event, bare_tick = run_both(self.FLEET, serving=self.BUSY)
        assert_identical(bare_event, event)
        assert_identical(bare_tick, tick)

    def test_timelines_identical_across_engines(self):
        _, _, rec_event, rec_tick = self.run_with_recorders()
        tl_event = rec_event.timeline()
        tl_tick = rec_tick.timeline()
        assert tl_event == tl_tick
        assert tl_event["totals"]["completed"] > 0
        assert tl_event["num_windows"] > 0

    def test_chrome_traces_identical_and_valid(self, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        _, _, rec_event, rec_tick = self.run_with_recorders()
        doc_event = rec_event.to_chrome_trace()
        doc_tick = rec_tick.to_chrome_trace()
        assert doc_event == doc_tick
        assert validate_chrome_trace(doc_event) > 0
        # the written artefact must itself schema-validate after JSON round-trip
        out = rec_tick.write_chrome_trace(tmp_path / "fleet.trace.json")
        loaded = json.loads(out.read_text())
        assert validate_chrome_trace(loaded) == len(doc_tick["traceEvents"])


def test_profiler_does_not_perturb_results():
    from repro.obs.profile import PhaseProfiler

    fleet = FleetConfig(num_replicas=3, router="p2c", num_regimes=2)
    bare_event, bare_tick = run_both(fleet)
    prof_event = PhaseProfiler()
    prof_tick = PhaseProfiler()
    event = _simulate_fleet_cluster_serving(
        MODEL, CLUSTER, SERVING, dataclasses.replace(fleet, engine="event"),
        profiler=prof_event,
    )
    tick = _simulate_fleet_cluster_serving(
        MODEL, CLUSTER, SERVING, dataclasses.replace(fleet, engine="tick"),
        profiler=prof_tick,
    )
    assert_identical(bare_event, event)
    assert_identical(bare_tick, tick)
    for prof in (prof_event, prof_tick):
        p = prof.profile()
        assert p.total_s > 0.0
        assert sum(p.fractions.values()) == pytest.approx(1.0)


CHAOS_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001, backoff_factor=2.0)


@pytest.mark.parametrize("router", ROUTERS)
def test_crash_equivalence(router):
    chaos = ChaosSpec(
        crashes=(CrashSpec(0.02, 0), CrashSpec(0.05, 1)), retry=CHAOS_RETRY
    )
    fleet = FleetConfig(num_replicas=3, router=router, num_regimes=2, chaos=chaos)
    event, tick = run_both(fleet)
    assert len(event.failures) == 2
    assert all(f.kind == "crash" for f in event.failures)
    assert all(f.recovered_at_s is not None for f in event.failures)
    assert event.mean_time_to_recover_s > 0.0
    assert_conserved(event, SERVING.num_requests)
    assert_identical(event, tick)


def test_crash_all_replicas_retry_exhaustion():
    # every replica dies at once, queues deep, with a one-attempt budget and
    # no recovery: in-flight and queued work is lost terminally, later
    # arrivals shed "no-capacity"
    overload = ServingConfig(
        arrival_rate_rps=50000.0,
        num_requests=300,
        generate_len=6,
        max_batch_requests=4,
        prompt_len=8,
        seed=9,
    )
    chaos = ChaosSpec(
        crashes=(CrashSpec(0.002, 0), CrashSpec(0.002, 1)),
        retry=RetryPolicy(max_attempts=1),
        recover=False,
    )
    fleet = FleetConfig(
        num_replicas=2,
        router="jsq",
        num_regimes=2,
        slo_ms=10000.0,
        batch_slo_ms=20000.0,
        max_queue_per_replica=500,
        chaos=chaos,
    )
    event, tick = run_both(fleet, serving=overload)
    assert len(event.failures) == 2
    assert all(f.recovered_at_s is None for f in event.failures)
    assert event.mean_time_to_recover_s == 0.0
    assert event.retries == 0
    assert len(event.lost) > 0
    assert all(lo.attempts == 1 and lo.reason == "crash" for lo in event.lost)
    assert "no-capacity" in {s.reason for s in event.shed}
    assert event.availability < 1.0
    assert_conserved(event, overload.num_requests)
    assert_identical(event, tick)


@pytest.mark.parametrize("migrate", (False, True))
def test_preemption_equivalence(migrate):
    # one preemption with a grace period too short to drain the batch
    # (kill-lost path) and one generous enough to drain clean
    chaos = ChaosSpec(
        preemptions=(
            PreemptSpec(0.02, 0, grace_s=0.00005),
            PreemptSpec(0.06, 1, grace_s=0.01),
        ),
        retry=CHAOS_RETRY,
    )
    fleet = FleetConfig(
        num_replicas=3,
        router="p2c",
        num_regimes=2,
        migrate_on_drain=migrate,
        chaos=chaos,
    )
    event, tick = run_both(fleet)
    assert len(event.failures) == 2
    assert all(f.kind == "preempt" for f in event.failures)
    assert any(f.lost_active + f.lost_queued > 0 for f in event.failures)
    assert_conserved(event, SERVING.num_requests)
    assert_identical(event, tick)


def test_brownout_equivalence():
    chaos = ChaosSpec(brownouts=(BrownoutSpec(0.01, 0.08, 0, factor=5.0),))
    fleet = FleetConfig(num_replicas=2, router="jsq", num_regimes=2, chaos=chaos)
    event, tick = run_both(fleet)
    bare_event, _ = run_both(dataclasses.replace(fleet, chaos=None))
    assert event.makespan_s != bare_event.makespan_s  # the slowdown is real
    assert not event.failures and not event.lost
    assert_identical(event, tick)


def test_attempt_timeout_equivalence():
    overload = ServingConfig(
        arrival_rate_rps=50000.0,
        num_requests=300,
        generate_len=6,
        max_batch_requests=4,
        prompt_len=8,
        seed=9,
    )
    chaos = ChaosSpec(
        retry=RetryPolicy(
            max_attempts=2, backoff_base_s=0.0005, attempt_timeout_s=0.002
        )
    )
    fleet = FleetConfig(
        num_replicas=2,
        router="jsq",
        num_regimes=2,
        slo_ms=10000.0,
        batch_slo_ms=20000.0,
        max_queue_per_replica=500,
        chaos=chaos,
    )
    event, tick = run_both(fleet, serving=overload)
    assert event.retries > 0  # queue waits exceed the per-attempt timeout
    assert_conserved(event, overload.num_requests)
    assert_identical(event, tick)


def test_chaos_with_autoscale():
    base = ServingConfig(
        arrival_rate_rps=15000.0,
        num_requests=600,
        generate_len=8,
        max_batch_requests=8,
        prompt_len=8,
        seed=5,
    )
    arrivals = flash_crowd_arrivals(base, 4.0, 0.005, 0.05)
    chaos = ChaosSpec(
        crashes=(CrashSpec(0.01, 0),),
        preemptions=(PreemptSpec(0.02, 1, grace_s=0.001),),
        retry=CHAOS_RETRY,
    )
    fleet = FleetConfig(
        num_replicas=2,
        router="jsq",
        num_regimes=2,
        autoscale=True,
        min_replicas=2,
        max_replicas=8,
        slo_ms=50.0,
        batch_slo_ms=500.0,
        autoscale_check_every_s=0.002,
        scale_up_queue_per_replica=4.0,
        scale_dwell_checks=2,
        chaos=chaos,
    )
    event, tick = run_both(fleet, serving=base, arrivals=arrivals)
    assert len(event.failures) == 2
    assert event.mean_time_to_recover_s > 0.0
    assert_conserved(event, base.num_requests)
    assert_identical(event, tick)


def test_bad_day_schedule_equivalence():
    chaos = bad_day_schedule(
        num_replicas=3, horizon_s=0.12, seed=2, crashes=1, preemptions=1, brownouts=1
    )
    fleet = FleetConfig(num_replicas=3, router="p2c", num_regimes=2, chaos=chaos)
    event, tick = run_both(fleet)
    assert len(event.failures) >= 1
    assert_conserved(event, SERVING.num_requests)
    assert_identical(event, tick)


class TestChaosTelemetryEquivalence:
    """Recording a chaos run must stay observation-only and engine-identical."""

    CHAOS = ChaosSpec(
        crashes=(CrashSpec(0.02, 0),),
        preemptions=(PreemptSpec(0.04, 1, grace_s=0.0001),),
        brownouts=(BrownoutSpec(0.01, 0.05, 2, factor=3.0),),
        retry=CHAOS_RETRY,
    )
    FLEET = FleetConfig(num_replicas=3, router="jsq", num_regimes=2, chaos=CHAOS)

    def run_with_recorders(self):
        from repro.obs.recorder import TimelineRecorder

        rec_event = TimelineRecorder()
        rec_tick = TimelineRecorder()
        event = _simulate_fleet_cluster_serving(
            MODEL,
            CLUSTER,
            SERVING,
            dataclasses.replace(self.FLEET, engine="event"),
            recorder=rec_event,
        )
        tick = _simulate_fleet_cluster_serving(
            MODEL,
            CLUSTER,
            SERVING,
            dataclasses.replace(self.FLEET, engine="tick"),
            recorder=rec_tick,
        )
        return event, tick, rec_event, rec_tick

    def test_results_identical_with_recorder_attached(self):
        event, tick, _, _ = self.run_with_recorders()
        assert len(event.failures) == 2
        assert_identical(event, tick)

    def test_recording_is_observation_only(self):
        event, tick, _, _ = self.run_with_recorders()
        bare_event, bare_tick = run_both(self.FLEET)
        assert_identical(bare_event, event)
        assert_identical(bare_tick, tick)

    def test_timelines_identical_across_engines(self):
        _, _, rec_event, rec_tick = self.run_with_recorders()
        tl_event = rec_event.timeline()
        tl_tick = rec_tick.timeline()
        assert tl_event == tl_tick
        # the recorder counts hard kills; a preemption that drains clean
        # inside its grace period opens a FailureRecord but never fails
        assert tl_event["totals"]["failures"] >= 1
        assert tl_event["totals"]["retries"] + tl_event["totals"]["lost"] > 0

    def test_chrome_traces_identical_and_valid(self, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        _, _, rec_event, rec_tick = self.run_with_recorders()
        doc_event = rec_event.to_chrome_trace()
        doc_tick = rec_tick.to_chrome_trace()
        assert doc_event == doc_tick
        assert validate_chrome_trace(doc_event) > 0
        names = {e["name"] for e in doc_event["traceEvents"] if e.get("cat") == "chaos"}
        assert "fail" in names and "outage" in names
        out = rec_tick.write_chrome_trace(tmp_path / "chaos.trace.json")
        loaded = json.loads(out.read_text())
        assert validate_chrome_trace(loaded) == len(doc_tick["traceEvents"])


class TestSloMonitoringEquivalence:
    """The SLO monitor must be observation-only and engine-identical.

    The whole monitored pipeline — recorder, burn-rate evaluator, blind
    signal detector, ground-truth scorer — runs through the ``run()``
    facade on both engines, over the bad-day smoke preset (hot enough
    that crashes lose work, brownouts span multiple baselined steps and
    the error budget actually burns).  The contract: bit-identical alert
    logs, detections and compliance summaries across engines, and not a
    single shared report field may change versus an unmonitored run.
    """

    def scenario(self, engine, monitored=True):
        from repro.obs.slo import SloSpec
        from repro.scenarios import TelemetrySpec, get_scenario

        s = get_scenario("fleet-bad-day-smoke")
        assert s.fleet is not None
        return dataclasses.replace(
            s,
            fleet=dataclasses.replace(s.fleet, engine=engine),
            telemetry=TelemetrySpec(slo=SloSpec()) if monitored else None,
        )

    def test_alert_logs_identical_across_engines(self):
        from repro.scenarios import run

        ev = run(self.scenario("event"))
        tk = run(self.scenario("tick"))
        assert ev.alerts == tk.alerts
        assert ev.detection == tk.detection
        assert ev.slo == tk.slo
        # and non-trivially so: this bad day is actually visible
        assert len(ev.alerts) >= 1
        scored = ev.detection["scored"]
        assert scored["outages"]["detected"] >= 1
        assert scored["brownouts"]["detected"] >= 1

    def test_alert_spans_well_formed(self):
        from repro.obs.slo import AlertSpan
        from repro.scenarios import run

        report = run(self.scenario("event"))
        spans = [AlertSpan(**a) for a in report.alerts]
        by_kind: dict[str, list[AlertSpan]] = {}
        for span in spans:
            assert span.close_s >= span.open_s
            by_kind.setdefault(span.kind, []).append(span)
        for kind_spans in by_kind.values():
            ordered = sorted(kind_spans, key=lambda s: s.open_s)
            for prev, cur in zip(ordered, ordered[1:]):
                assert prev.close_s <= cur.open_s, "alert spans overlap within a kind"

    def test_monitoring_is_observation_only(self):
        from repro.scenarios import run

        for engine in ("event", "tick"):
            mon = run(self.scenario(engine))
            bare = run(self.scenario(engine, monitored=False))
            drift = [
                f.name
                for f in dataclasses.fields(mon)
                if f.name not in ("slo", "alerts", "detection", "timeline")
                and getattr(mon, f.name) != getattr(bare, f.name)
            ]
            assert drift == []


def test_tick_rejects_custom_components():
    from repro.core.placement.vanilla import vanilla_placement
    from repro.fleet.admission import AdmissionController
    from repro.fleet.engine import simulate_fleet_tick
    from repro.fleet.router import Router
    from repro.trace.markov import MarkovRoutingModel

    regimes = [MarkovRoutingModel.with_affinity(8, 4, 0.8)]
    flat = vanilla_placement(4, 8, 4)
    fleet = FleetConfig(num_regimes=1, engine="tick")

    class MyRouter(Router):
        pass

    class MyAdmission(AdmissionController):
        pass

    with pytest.raises(ValueError, match="custom routers"):
        simulate_fleet_tick(
            [], MODEL, CLUSTER, regimes, [flat], fleet, router=MyRouter()
        )
    with pytest.raises(ValueError, match="custom admission"):
        simulate_fleet_tick(
            [],
            MODEL,
            CLUSTER,
            regimes,
            [flat],
            fleet,
            admission=MyAdmission.from_config(fleet),
        )
