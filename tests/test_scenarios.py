"""Tests for the unified Scenario API: spec serde, dispatch, registry,
sweep runner and the deprecation shims over the legacy entry points."""

from __future__ import annotations

import contextlib
import dataclasses
import json
import warnings

import pytest

import repro.engine.serving
import repro.fleet.simulate
from repro.config import (
    ClusterConfig,
    ExecutionMode,
    FleetConfig,
    InferenceConfig,
    ServingConfig,
    paper_model,
)
from repro.scenarios import (
    SCENARIOS,
    DriftSpec,
    FlashCrowdSpec,
    ReplacementSpec,
    Scenario,
    SimReport,
    get_scenario,
    list_scenarios,
    register_scenario,
    run,
    run_sweep,
)

SMALL_CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=2)
SMALL_SERVING = ServingConfig(
    arrival_rate_rps=900.0,
    num_requests=24,
    generate_len=4,
    max_batch_requests=8,
    prompt_len=8,
    seed=0,
)


def _batch_scenario(**overrides) -> Scenario:
    fields = dict(
        name="t-batch",
        model=paper_model("gpt-m-350m-e8"),
        cluster=SMALL_CLUSTER,
        batch=InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=3),
    )
    fields.update(overrides)
    return Scenario(**fields)


def _serving_scenario(**overrides) -> Scenario:
    fields = dict(
        name="t-serving",
        model=paper_model("gpt-m-350m-e8"),
        cluster=SMALL_CLUSTER,
        serving=SMALL_SERVING,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestSerde:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_registered_round_trip(self, name):
        s = get_scenario(name)
        assert Scenario.from_dict(s.to_dict()) == s
        assert Scenario.from_json(s.to_json()) == s

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_to_dict_is_plain_json(self, name):
        s = get_scenario(name)
        text = json.dumps(s.to_dict())  # raises on non-JSON types
        assert json.loads(text) == s.to_dict()

    def test_file_round_trip(self, tmp_path):
        s = get_scenario("fig15-abrupt-smoke")
        path = tmp_path / "spec.json"
        s.save(path)
        assert Scenario.load(path) == s

    def test_enums_encode_as_values(self):
        s = _serving_scenario(mode=ExecutionMode.VANILLA)
        d = s.to_dict()
        assert d["mode"] == "vanilla"
        assert d["model"]["gating"] == "top1"
        assert Scenario.from_dict(d).mode is ExecutionMode.VANILLA

    def test_unknown_field_rejected(self):
        d = _serving_scenario().to_dict()
        d["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            Scenario.from_dict(d)

    def test_mistyped_scalars_rejected_at_decode(self):
        # a hand-edited spec must fail at load with the field path, not
        # deep inside a simulator
        d = _serving_scenario().to_dict()
        d["serving"]["seed"] = "3"
        with pytest.raises(ValueError, match="serving.seed"):
            Scenario.from_dict(d)
        d = _serving_scenario().to_dict()
        d["affinity"] = "high"
        with pytest.raises(ValueError, match="affinity"):
            Scenario.from_dict(d)
        d = _serving_scenario().to_dict()
        d["name"] = 7
        with pytest.raises(ValueError, match="name"):
            Scenario.from_dict(d)

    def test_nested_validation_still_applies(self):
        d = _serving_scenario().to_dict()
        d["serving"]["arrival"] = "uniform"
        with pytest.raises(ValueError, match="arrival"):
            Scenario.from_dict(d)

    def test_optional_sections_survive(self):
        s = get_scenario("fig16-flash-autoscale-smoke")
        restored = Scenario.from_dict(s.to_dict())
        assert restored.flash == s.flash
        assert restored.fleet == s.fleet
        assert restored.drift is None


class TestScenarioValidation:
    def test_needs_exactly_one_workload(self):
        with pytest.raises(ValueError, match="workload"):
            Scenario(
                name="t", model=paper_model("gpt-m-350m-e8"), cluster=SMALL_CLUSTER
            )
        with pytest.raises(ValueError, match="both"):
            _batch_scenario(serving=SMALL_SERVING)

    def test_serving_sections_require_serving(self):
        for section in (
            {"drift": DriftSpec("abrupt")},
            {"replacement": ReplacementSpec()},
            {"fleet": FleetConfig()},
        ):
            with pytest.raises(ValueError, match="serving"):
                _batch_scenario(**section)

    def test_flash_and_mix_require_fleet(self):
        with pytest.raises(ValueError, match="fleet"):
            _serving_scenario(flash=FlashCrowdSpec())
        with pytest.raises(ValueError, match="fleet"):
            _serving_scenario(regime_mix="diurnal")

    def test_fleet_rejects_drift_section(self):
        with pytest.raises(ValueError, match="regime_mix"):
            _serving_scenario(fleet=FleetConfig(), drift=DriftSpec("abrupt"))

    def test_flash_rejects_bursty_arrivals(self):
        # the flash process replaces the arrival stream; declaring a bursty
        # MMPP alongside it would be silently ignored — so it must not load
        bursty = dataclasses.replace(SMALL_SERVING, arrival="bursty")
        with pytest.raises(ValueError, match="poisson"):
            _serving_scenario(
                serving=bursty, fleet=FleetConfig(), flash=FlashCrowdSpec()
            )
        # poisson + flash is the supported combination
        s = _serving_scenario(fleet=FleetConfig(), flash=FlashCrowdSpec())
        assert s.kind == "fleet"

    def test_diurnal_mix_needs_two_regimes(self):
        with pytest.raises(ValueError, match="two regimes"):
            _serving_scenario(
                fleet=FleetConfig(num_regimes=3), regime_mix="diurnal"
            )

    def test_fleet_replacement_needs_replace_flag(self):
        with pytest.raises(ValueError, match="replace"):
            _serving_scenario(
                fleet=FleetConfig(replace=False), replacement=ReplacementSpec()
            )
        # with the flag on it is accepted
        s = _serving_scenario(
            fleet=FleetConfig(replace=True), replacement=ReplacementSpec()
        )
        assert s.kind == "fleet"

    def test_rejects_bad_scalars(self):
        with pytest.raises(ValueError):
            _serving_scenario(name="")
        with pytest.raises(ValueError):
            _serving_scenario(affinity=1.5)
        with pytest.raises(ValueError):
            _serving_scenario(placement_strategy="quantum")
        with pytest.raises(ValueError):
            _serving_scenario(regime_mix="weekly")
        with pytest.raises(ValueError):
            _serving_scenario(profile_tokens=0)
        with pytest.raises(ValueError):
            DriftSpec("sideways")
        with pytest.raises(ValueError):
            ReplacementSpec(halflife_tokens=0.0)
        with pytest.raises(ValueError):
            FlashCrowdSpec(factor=0.5)

    def test_kind_dispatch_rules(self):
        assert _batch_scenario().kind == "batch"
        assert _serving_scenario().kind == "serving"
        assert _serving_scenario(drift=DriftSpec("gradual")).kind == "online"
        assert _serving_scenario(replacement=ReplacementSpec()).kind == "online"
        assert _serving_scenario(fleet=FleetConfig()).kind == "fleet"

    def test_smoke_naming_convention(self):
        assert get_scenario("fig15-abrupt-smoke").is_smoke
        assert not get_scenario("fig15-abrupt").is_smoke


class TestRegistry:
    def test_preset_floor_and_kind_coverage(self):
        # the acceptance bar: >= 10 presets spanning all four kinds,
        # in full size and smoke variants alike
        assert len(list_scenarios(smoke=False)) >= 10
        for kind in ("batch", "serving", "online", "fleet"):
            assert list_scenarios(kind=kind, smoke=False), kind
            assert list_scenarios(kind=kind, smoke=True), kind

    def test_every_full_preset_has_a_smoke_variant(self):
        for name in list_scenarios(smoke=False):
            assert f"{name}-smoke" in SCENARIOS, name

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_names_are_registry_keys(self, name):
        assert get_scenario(name).name == name

    @pytest.mark.parametrize("name", list_scenarios(smoke=True))
    def test_completeness_every_smoke_preset_runs(self, name):
        report = run(name)
        assert isinstance(report, SimReport)
        assert report.scenario == name
        assert report.kind == get_scenario(name).kind
        assert report.is_finite()
        assert report.completed > 0
        assert report.generated_tokens > 0
        assert report.makespan_s > 0
        assert report.gpu_hours > 0

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="fig10-end-to-end"):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        s = get_scenario("serve-poisson-smoke")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(dataclasses.replace(s))
        # explicit overwrite puts the same object back (no state leaked)
        assert register_scenario(s, overwrite=True) is s


class TestRunFacade:
    def test_run_accepts_name_or_object(self):
        by_name = run("serve-poisson-smoke")
        by_object = run(get_scenario("serve-poisson-smoke"))
        assert by_name == by_object  # raw excluded from equality; rest pinned

    def test_run_rejects_other_types(self):
        with pytest.raises(TypeError, match="Scenario"):
            run(42)

    def test_serving_report_matches_raw(self):
        report = run(_serving_scenario())
        raw = report.raw
        assert report.completed == len(raw.completed)
        assert report.latency_p95_s == raw.latency.p95_s
        assert report.throughput_rps == raw.throughput_rps
        assert report.generated_tokens == raw.generated_tokens
        expected_hours = raw.makespan_s * SMALL_CLUSTER.num_gpus / 3600.0
        assert report.gpu_hours == pytest.approx(expected_hours)
        assert report.cost_usd == pytest.approx(
            expected_hours * SMALL_CLUSTER.gpu_hour_usd
        )

    def test_batch_report_carries_comparison_extras(self):
        report = run(_batch_scenario())
        for key in (
            "speedup_noaff",
            "speedup_exflow",
            "comm_reduction_exflow",
            "alltoall_fraction_deepspeed",
            "gpu_stay_fraction_exflow",
        ):
            assert key in report.extra, key
        assert set(report.raw) == {"deepspeed", "exflow-noaff", "exflow"}
        # the headline row follows scenario.mode
        vanilla = run(_batch_scenario(mode=ExecutionMode.VANILLA))
        assert vanilla.throughput_tokens_per_s == pytest.approx(
            vanilla.raw["deepspeed"].result.throughput_tokens_per_s
        )

    def test_online_report_tracks_kept_mass(self):
        report = run("fig15-abrupt-smoke")
        assert report.kind == "online"
        assert 0.0 <= report.kept_mass_initial <= 1.0
        assert 0.0 <= report.kept_mass_final <= 1.0
        assert report.num_replacements == len(report.raw.events)
        assert report.migration_stall_s == report.raw.migration_stall_s

    def test_fleet_report_matches_raw(self):
        report = run("fig16-flash-static-smoke")
        raw = report.raw
        assert report.kind == "fleet"
        assert report.completed == raw.served
        assert report.shed == len(raw.shed)
        assert report.shed_fraction == raw.shed_fraction
        assert report.slo_attainment == raw.slo_attainment
        assert report.gpu_hours == raw.gpu_hours
        assert report.cost_usd == raw.cost_usd
        assert report.usd_per_million_tokens == raw.usd_per_million_tokens

    def test_fleet_replacement_halflife_reaches_estimator(self, monkeypatch):
        # the spec contract: every declared field takes effect — a fleet
        # scenario's replacement halflife must reach the per-replica
        # streaming estimators, not be silently dropped
        # OnlineReplacer owns estimator construction; patch its reference
        import repro.core.online as online_mod

        captured: list = []
        original = online_mod.StreamingAffinityEstimator

        class Spy(original):
            def __init__(self, num_experts, num_layers, *args, **kwargs):
                captured.append(args[0] if args else kwargs.get("halflife_tokens"))
                super().__init__(num_experts, num_layers, *args, **kwargs)

        monkeypatch.setattr(online_mod, "StreamingAffinityEstimator", Spy)
        scenario = _serving_scenario(
            fleet=FleetConfig(num_replicas=2, router="jsq", replace=True),
            replacement=ReplacementSpec(halflife_tokens=77.0),
        )
        report = run(scenario)
        assert report.is_finite()
        assert 77.0 in captured

    def test_keep_raw_false_drops_payload(self):
        report = run("serve-poisson-smoke", keep_raw=False)
        assert report.raw is None

    def test_deterministic(self):
        assert run("serve-bursty-smoke") == run("serve-bursty-smoke")


class TestRunSweep:
    def test_matches_serial_and_preserves_order(self):
        names = ["serve-poisson-smoke", "fig10-end-to-end-smoke", "serve-bursty-smoke"]
        parallel = run_sweep(names, processes=2)
        serial = run_sweep(names, processes=1)
        assert [r.scenario for r in parallel] == names
        assert parallel == serial
        assert all(r.raw is None for r in parallel)

    def test_grid_via_dataclasses_replace(self):
        base = _serving_scenario()
        grid = [
            dataclasses.replace(
                base,
                name=f"t-rate{int(rate)}",
                serving=dataclasses.replace(base.serving, arrival_rate_rps=rate),
            )
            for rate in (300.0, 900.0)
        ]
        reports = run_sweep(grid, processes=2)
        assert [r.scenario for r in reports] == ["t-rate300", "t-rate900"]
        assert all(r.is_finite() for r in reports)

    def test_empty_and_invalid(self):
        assert run_sweep([]) == []
        with pytest.raises(ValueError):
            run_sweep(["serve-poisson-smoke"], processes=0)


class TestSimReport:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SimReport(scenario="x", kind="quantum")

    def test_is_finite_flags_bad_numbers(self):
        good = SimReport(scenario="x", kind="batch")
        assert good.is_finite()
        assert not dataclasses.replace(good, makespan_s=float("inf")).is_finite()
        assert not dataclasses.replace(good, extra={"v": float("nan")}).is_finite()

    def test_to_dict_excludes_raw_and_serializes(self):
        rep = SimReport(scenario="x", kind="fleet", raw=object())
        d = rep.to_dict()
        assert "raw" not in d
        assert json.loads(rep.to_json())["scenario"] == "x"


# the six legacy entry points, now shims over the facade's implementations
SHIMS = [
    (repro.engine.serving, "simulate_serving"),
    (repro.engine.serving, "simulate_cluster_serving"),
    (repro.engine.serving, "simulate_online_serving"),
    (repro.engine.serving, "simulate_online_cluster_serving"),
    (repro.fleet.simulate, "simulate_fleet_serving"),
    (repro.fleet.simulate, "simulate_fleet_cluster_serving"),
]


class TestDeprecationShims:
    @pytest.mark.parametrize("mod,name", SHIMS)
    def test_warns_exactly_once_per_process(self, mod, name):
        fn = getattr(mod, name)
        fn._warned = False  # reset the guard: other tests may have tripped it
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                with contextlib.suppress(Exception):  # warn fires before the call
                    fn()
        messages = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(messages) == 1, f"{name} warned {len(messages)} times"
        assert name in str(messages[0].message)
        assert "repro.run" in str(messages[0].message)

    @pytest.mark.parametrize("mod,name", SHIMS)
    def test_wrapped_implementation_reachable(self, mod, name):
        fn = getattr(mod, name)
        assert hasattr(fn, "__wrapped__")
        assert getattr(mod, f"_{name}") is fn.__wrapped__

    def test_shim_still_produces_results(self):
        from repro.engine.serving import Request, simulate_serving

        simulate_serving._warned = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = simulate_serving(
                [Request(0, 0.0, 8, 2)], lambda b: 1e-3, max_batch_requests=4
            )
        assert len(res.completed) == 1
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
