"""Unit tests for repro.analysis (heatmap, tables, report)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.heatmap import ascii_heatmap, heatmap_csv
from repro.analysis.report import format_series, format_table
from repro.analysis.tables import (
    comm_volume_table,
    deepspeed_volume,
    exflow_volume,
    topo_aware_volume,
)


class TestHeatmap:
    def test_renders_rows(self):
        out = ascii_heatmap(np.eye(4), title="identity")
        assert "identity" in out
        assert out.count("\n") >= 5

    def test_peak_reported(self):
        out = ascii_heatmap(np.array([[0.0, 0.5], [0.25, 0.0]]))
        assert "0.5000" in out

    def test_hot_cells_darker(self):
        m = np.array([[1.0, 0.0], [0.0, 0.0]])
        body = ascii_heatmap(m).splitlines()
        row0 = body[0]
        assert "@" in row0  # peak cell uses the darkest ramp char

    def test_pooling_large_matrix(self):
        out = ascii_heatmap(np.random.default_rng(0).random((200, 200)), max_size=32)
        data_rows = [ln for ln in out.splitlines() if ln and not ln.startswith("    ")]
        assert len(data_rows) <= 33

    def test_zero_matrix(self):
        out = ascii_heatmap(np.zeros((3, 3)))
        assert "peak value: 0.0000" in out

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.array([[-1.0]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(4))

    def test_csv_roundtrip(self):
        m = np.array([[0.5, 0.25], [0.125, 1.0]])
        parsed = np.array(
            [[float(v) for v in line.split(",")] for line in heatmap_csv(m).strip().splitlines()]
        )
        assert np.allclose(parsed, m)


class TestCommVolumeTable:
    def test_deepspeed_formula(self):
        v = deepspeed_volume(g=4, n=8, L=12, p=0.5)
        assert v.top1 == 2 * 4 * 8 * 12 * 0.5
        assert v.top2 == 2 * v.top1
        assert v.applicable_in_inference

    def test_topo_aware_not_applicable(self):
        v = topo_aware_volume(4, 8, 12, 0.4, "FasterMoE")
        assert not v.applicable_in_inference

    def test_exflow_formula(self):
        v = exflow_volume(g=4, n=8, L=12, p_star=0.25)
        assert v.top1 == 4 * 8 * (12 * 0.25 + 4)
        assert v.top2 == 4 * 8 * (2 * 12 * 0.25 + 4)

    def test_exflow_beats_deepspeed_at_realistic_p(self):
        """With p* around half of p and enough layers, ExFlow's volume is
        lower despite the AllGather term."""
        ds = deepspeed_volume(16, 8, 24, p=0.9)
        ex = exflow_volume(16, 8, 24, p_star=0.45)
        assert ex.top1 < ds.top1

    def test_allgather_term_amortised_by_depth(self):
        """Deeper models shrink ExFlow's relative AllGather overhead."""
        shallow = exflow_volume(8, 8, 12, 0.5).top1 / deepspeed_volume(8, 8, 12, 0.9).top1
        deep = exflow_volume(8, 8, 40, 0.5).top1 / deepspeed_volume(8, 8, 40, 0.9).top1
        assert deep < shallow

    def test_table_has_four_rows(self):
        rows = comm_volume_table(4, 8, 12, p=0.8)
        assert [r.framework for r in rows] == [
            "FasterMoE",
            "TA-MoE",
            "Deepspeed-MoE",
            "ExFlow",
        ]

    def test_scaled_by(self):
        v = deepspeed_volume(2, 2, 2, 1.0)
        b1, b2 = v.scaled_by(2048)
        assert b1 == v.top1 * 2048
        assert b2 == v.top2 * 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            deepspeed_volume(0, 1, 1, 0.5)
        with pytest.raises(ValueError):
            exflow_volume(1, 1, 1, 1.5)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_format_table_row_width_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        out = format_series([1, 2], {"y": [0.5, 0.25]}, x_label="n")
        assert "n" in out.splitlines()[0]
        assert "0.250" in out

    def test_format_series_length_check(self):
        with pytest.raises(ValueError):
            format_series([1, 2], {"y": [1.0]})
