"""Unit tests for repro.engine.comparison."""

from __future__ import annotations

import pytest

from repro.engine.comparison import compare_modes


class TestCompareModes:
    @pytest.fixture
    def rows(self, small_model, small_cluster, small_infer):
        return compare_modes(small_model, small_cluster, small_infer, seed=3)

    def test_three_rows(self, rows):
        assert set(rows) == {"deepspeed", "exflow-noaff", "exflow"}

    def test_baseline_speedup_is_one(self, rows):
        assert rows["deepspeed"].speedup == pytest.approx(1.0)
        assert rows["deepspeed"].comm_reduction == pytest.approx(0.0)

    def test_paper_ordering(self, rows):
        """The paper's headline: exflow >= context-coherence-only > baseline."""
        assert rows["exflow-noaff"].speedup > 1.0
        assert rows["exflow"].speedup >= rows["exflow-noaff"].speedup

    def test_comm_reduction_positive(self, rows):
        assert rows["exflow"].comm_reduction > 0.3

    def test_locality_improves_with_affinity(self, rows):
        assert (
            rows["exflow"].result.gpu_stay_fraction
            > rows["deepspeed"].result.gpu_stay_fraction
        )

    def test_same_workload_everywhere(self, rows):
        tokens = {r.result.generated_tokens for r in rows.values()}
        assert len(tokens) == 1

    def test_throughput_property(self, rows):
        for row in rows.values():
            assert row.throughput > 0
