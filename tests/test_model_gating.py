"""Unit tests for repro.model.gating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GatingKind
from repro.model.gating import TopKGate, gshard_balance_loss


@pytest.fixture
def gate() -> TopKGate:
    return TopKGate(16, 8, GatingKind.TOP1, np.random.default_rng(0))


@pytest.fixture
def gate2() -> TopKGate:
    return TopKGate(16, 8, GatingKind.TOP2, np.random.default_rng(0))


class TestTopKGate:
    def test_output_shapes_top1(self, gate):
        x = np.random.default_rng(1).normal(size=(10, 16))
        out = gate(x)
        assert out.experts.shape == (10, 1)
        assert out.weights.shape == (10, 1)
        assert out.probs.shape == (10, 8)

    def test_output_shapes_top2(self, gate2):
        out = gate2(np.random.default_rng(1).normal(size=(10, 16)))
        assert out.experts.shape == (10, 2)
        assert out.k == 2

    def test_top1_is_argmax(self, gate):
        x = np.random.default_rng(2).normal(size=(32, 16))
        out = gate(x)
        assert np.array_equal(out.top1, out.probs.argmax(axis=1))

    def test_top2_ordered_and_distinct(self, gate2):
        out = gate2(np.random.default_rng(3).normal(size=(64, 16)))
        assert (out.experts[:, 0] != out.experts[:, 1]).all()
        p0 = np.take_along_axis(out.probs, out.experts[:, :1], axis=1)
        p1 = np.take_along_axis(out.probs, out.experts[:, 1:], axis=1)
        assert (p0 >= p1).all()

    def test_weights_normalised(self, gate2):
        out = gate2(np.random.default_rng(4).normal(size=(20, 16)))
        assert np.allclose(out.weights.sum(axis=1), 1.0)

    def test_top1_weight_is_one(self, gate):
        out = gate(np.random.default_rng(5).normal(size=(20, 16)))
        assert np.allclose(out.weights, 1.0)

    def test_probs_row_stochastic(self, gate):
        out = gate(np.random.default_rng(6).normal(size=(20, 16)))
        assert np.allclose(out.probs.sum(axis=1), 1.0)
        assert (out.probs >= 0).all()

    def test_temperature_sharpens(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(100, 16))
        cold = TopKGate(16, 8, GatingKind.TOP1, np.random.default_rng(0), temperature=0.1)
        warm = TopKGate(16, 8, GatingKind.TOP1, np.random.default_rng(0), temperature=10.0)
        assert cold(x).probs.max(axis=1).mean() > warm(x).probs.max(axis=1).mean()

    def test_rejects_wrong_input_dim(self, gate):
        with pytest.raises(ValueError):
            gate(np.zeros((5, 8)))

    def test_rejects_top2_with_one_expert(self):
        with pytest.raises(ValueError):
            TopKGate(16, 1, GatingKind.TOP2)

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            TopKGate(16, 4, temperature=0.0)

    def test_deterministic(self):
        a = TopKGate(16, 8, rng=np.random.default_rng(9))
        b = TopKGate(16, 8, rng=np.random.default_rng(9))
        x = np.random.default_rng(10).normal(size=(5, 16))
        assert np.array_equal(a(x).top1, b(x).top1)


class TestBalanceLoss:
    def test_balanced_routing_is_one(self):
        """Uniform dispatch + uniform probs -> loss == 1."""
        e, n = 4, 400
        probs = np.full((n, e), 1.0 / e)
        experts = (np.arange(n) % e)[:, None]
        assert gshard_balance_loss(probs, experts, e) == pytest.approx(1.0)

    def test_collapsed_routing_is_e(self):
        e, n = 4, 100
        probs = np.zeros((n, e))
        probs[:, 0] = 1.0
        experts = np.zeros((n, 1), dtype=int)
        assert gshard_balance_loss(probs, experts, e) == pytest.approx(float(e))

    def test_empty_batch(self):
        assert gshard_balance_loss(np.zeros((0, 4)), np.zeros((0, 1), int), 4) == 0.0

    def test_shape_check(self):
        with pytest.raises(ValueError):
            gshard_balance_loss(np.zeros((5, 3)), np.zeros((5, 1), int), 4)

    def test_gate_balance_grad_reduces_loss(self, gate):
        """A gradient step on the balance loss should not increase it."""
        rng = np.random.default_rng(11)
        x = rng.normal(size=(256, 16))
        # collapse the gate first so there is something to balance
        gate.weight[:, 0] += 2.0
        before = gate.balance_loss(gate(x).probs, gate(x).experts)
        for _ in range(20):
            gate.weight -= 0.5 * gate.balance_grad(x)
        after = gate.balance_loss(gate(x).probs, gate(x).experts)
        assert after < before
