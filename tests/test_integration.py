"""Integration tests: cross-package flows and small-scale paper claims.

Each test exercises a full pipeline (model -> trace -> placement -> engine)
and asserts the *shape* of a paper result at proxy scale.  The benchmarks
reproduce the full-scale versions; these tests guard the mechanisms.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    InferenceConfig,
    ModelConfig,
    paper_model,
    scaled_proxy,
    wilkes3,
)
from repro.core.affinity import affinity_concentration
from repro.core.exflow import ExFlowOptimizer
from repro.core.placement.base import placement_locality
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.comparison import compare_modes
from repro.engine.executor import simulate_inference
from repro.engine.workload import make_decode_workload
from repro.model.transformer import MoETransformer
from repro.trace.collector import collect_trace
from repro.trace.datasets import make_corpus
from repro.trace.markov import MarkovRoutingModel


class TestModelToPlacementPipeline:
    """Real numpy-model traces drive placement end to end."""

    @pytest.fixture(scope="class")
    def setup(self):
        cfg = ModelConfig(
            name="it", num_layers=6, num_experts=8, d_model=32, vocab_size=128, num_heads=2
        )
        model = MoETransformer(cfg, np.random.default_rng(0))
        corpus = make_corpus("pile", vocab_size=128, num_topics=8)
        trace = collect_trace(model, corpus, 800, rng=np.random.default_rng(1))
        return cfg, model, corpus, trace

    def test_real_model_trace_has_affinity(self, setup):
        _, _, _, trace = setup
        conc = affinity_concentration(trace, 0, top=2)
        assert conc > 2 / trace.num_experts  # above memoryless chance

    def test_placement_from_real_trace_beats_vanilla(self, setup):
        cfg, model, corpus, trace = setup
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        ilp = solve_placement("ilp", trace, cluster)
        van = vanilla_placement(trace.num_layers, trace.num_experts, 4)
        # evaluate out-of-sample: fresh documents through the same model
        fresh = collect_trace(model, corpus, 400, rng=np.random.default_rng(2))
        assert (
            placement_locality(ilp, fresh).gpu_stay_fraction
            > placement_locality(van, fresh).gpu_stay_fraction
        )


class TestPaperClaimShapes:
    """Small-scale versions of the headline evaluation claims."""

    def test_context_coherence_halves_alltoall_count(self):
        """Section IV-A: one Alltoall per layer instead of two."""
        model = ModelConfig("m", num_layers=4, num_experts=8, d_model=64, vocab_size=64)
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        infer = InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=4)
        rows = compare_modes(model, cluster, infer, seed=0)
        van = rows["deepspeed"].result.ledger.count_by_op["alltoall"]
        coh = rows["exflow-noaff"].result.ledger.count_by_op["alltoall"]
        assert coh * 2 == van

    def test_exflow_speedup_band(self):
        """Fig 10 shape: ExFlow wins clearly on a multi-node cluster, with
        affinity placement adding on top of context coherence."""
        model = scaled_proxy(paper_model("gpt-m-350m-e32"), d_model=64)
        cluster = wilkes3(num_nodes=2)
        infer = InferenceConfig(requests_per_gpu=2, prompt_len=32, generate_len=4)
        rows = compare_modes(model, cluster, infer, seed=1)
        assert 1.0 < rows["exflow-noaff"].speedup
        assert rows["exflow"].speedup > rows["exflow-noaff"].speedup
        assert rows["exflow"].speedup < 5.0  # sanity: not absurd

    def test_alltoall_share_rises_with_nodes(self):
        """Fig 9 shape: Alltoall share of runtime grows with node count."""
        model = scaled_proxy(paper_model("gpt-m-350m-e32"), d_model=64)
        infer = InferenceConfig(
            requests_per_gpu=2, prompt_len=16, generate_len=3, mode=ExecutionMode.VANILLA
        )
        shares = []
        for nodes in (1, 2, 4):
            cluster = wilkes3(nodes)
            placement = vanilla_placement(
                model.num_moe_layers, model.num_experts, cluster.num_gpus
            )
            workload = make_decode_workload(model, cluster, infer)
            res = simulate_inference(model, cluster, infer, placement, workload)
            shares.append(res.alltoall_fraction)
        assert shares[0] < shares[1] < shares[2]

    def test_locality_decreases_with_gpus_but_exflow_dominates(self):
        """Fig 7 shape: % tokens staying on the same GPU falls as the model
        spreads over more GPUs, and ExFlow stays above DeepSpeed."""
        e = 16
        routing = MarkovRoutingModel.with_affinity(e, 6, 0.85, rng=np.random.default_rng(3))
        trace = routing.sample(4000, np.random.default_rng(4))
        exflow_stay, vanilla_stay = [], []
        for gpus in (2, 4, 8):
            cluster = ClusterConfig(num_nodes=1, gpus_per_node=gpus)
            p = solve_placement("ilp", trace, cluster)
            v = vanilla_placement(6, e, gpus)
            exflow_stay.append(placement_locality(p, trace).gpu_stay_fraction)
            vanilla_stay.append(placement_locality(v, trace).gpu_stay_fraction)
        assert exflow_stay[0] > exflow_stay[1] > exflow_stay[2]
        assert all(x > v for x, v in zip(exflow_stay, vanilla_stay, strict=True))

    def test_ood_consistency(self):
        """Table III shape: a placement profiled on 'pile' keeps its
        locality advantage on out-of-distribution corpora."""
        cfg = ModelConfig(
            name="ood", num_layers=5, num_experts=8, d_model=32, vocab_size=128, num_heads=2
        )
        model = MoETransformer(cfg, np.random.default_rng(5))
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        pile = make_corpus("pile", vocab_size=128, num_topics=8)
        profile = collect_trace(model, pile, 800, rng=np.random.default_rng(6))
        placement = solve_placement("staged", profile, cluster)
        base = placement_locality(placement, profile, cluster).gpu_stay_fraction

        for name in ("c4", "dolma", "yelp"):
            corpus = make_corpus(name, vocab_size=128, num_topics=8)
            ood = collect_trace(model, corpus, 600, rng=np.random.default_rng(7))
            stay = placement_locality(placement, ood, cluster).gpu_stay_fraction
            # row-normalised ratio near 1.0 (paper: 0.98 - 1.01)
            assert stay / base > 0.75

    def test_profile_size_saturates(self):
        """Fig 13 shape: placement quality saturates after a few thousand
        profiled tokens."""
        routing = MarkovRoutingModel.with_affinity(8, 6, 0.85, rng=np.random.default_rng(8))
        eval_trace = routing.sample(4000, np.random.default_rng(9))
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)

        def stay(n_profile: int) -> float:
            profile = routing.sample(n_profile, np.random.default_rng(100 + n_profile))
            p = solve_placement("ilp", profile, cluster)
            return placement_locality(p, eval_trace).gpu_stay_fraction

        tiny, mid, big = stay(50), stay(1000), stay(4000)
        assert big >= mid - 0.03  # saturation: more tokens don't help much
        assert mid > tiny - 0.02  # but tiny profiles are noticeably worse


class TestExFlowFacadeIntegration:
    def test_full_pipeline_runs(self):
        model = ModelConfig("f", num_layers=4, num_experts=16, d_model=32, vocab_size=64)
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        infer = InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=4)
        routing = MarkovRoutingModel.with_affinity(16, 4, 0.85, rng=np.random.default_rng(0))

        opt = ExFlowOptimizer(model, cluster)
        plan = opt.fit(routing.sample(2000, np.random.default_rng(1)))
        workload = make_decode_workload(model, cluster, infer, routing=routing)

        results = {
            mode: opt.run(plan, workload, infer, mode)
            for mode in ExecutionMode
        }
        assert (
            results[ExecutionMode.EXFLOW].total_time_s
            <= results[ExecutionMode.CONTEXT_COHERENT].total_time_s
        )
        assert (
            results[ExecutionMode.CONTEXT_COHERENT].total_time_s
            < results[ExecutionMode.VANILLA].total_time_s
        )
