"""SLO spec validation, burn-rate evaluation, OpenMetrics, CLI surface.

The burn evaluator is pure arithmetic over a timeline document, so most
tests here drive it with hand-built docs whose burn rates are easy to
compute by inspection; a Hypothesis sweep holds the span fold to its
well-formedness contract (close >= open, >= 1 window, non-overlapping
within each ``severity:signal`` kind) on arbitrary counter columns.  The
OpenMetrics half round-trips expositions through the strict parser and
checks the rejections CI relies on.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, FleetConfig, ModelConfig, ServingConfig
from repro.engine.metrics import LATENCY_HIST_EDGES_S, LatencyStats
from repro.obs.export import openmetrics_text, parse_openmetrics
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    AlertSpan,
    BurnWindowSpec,
    SloClassOverride,
    SloSpec,
    compliance_summary,
    evaluate_burn_alerts,
)
from repro.scenarios import Scenario, TelemetrySpec, run

MODEL = ModelConfig(
    name="slo-test", num_layers=4, num_experts=8, d_model=64, num_heads=4
)
CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=2)
SERVING = ServingConfig(
    arrival="bursty",
    arrival_rate_rps=900.0,
    num_requests=120,
    generate_len=6,
    max_batch_requests=8,
    prompt_len=8,
    seed=0,
)


def monitored_scenario(**overrides) -> Scenario:
    fields = dict(
        name="t-slo",
        model=MODEL,
        cluster=CLUSTER,
        serving=SERVING,
        fleet=FleetConfig(num_replicas=2, router="jsq", num_regimes=2),
        telemetry=TelemetrySpec(slo=SloSpec()),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestSpecs:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"severity": "sev1"},
            {"short_frac": 0.0},
            {"short_frac": 0.5, "long_frac": 0.1},
            {"long_frac": 1.5},
            {"burn_threshold": 0.5},
        ),
    )
    def test_burn_window_validation(self, kwargs):
        with pytest.raises(ValueError):
            BurnWindowSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"name": ""},
            {"name": "x", "p95_ms": 0.0},
            {"name": "x", "availability": 1.0},
        ),
    )
    def test_class_override_validation(self, kwargs):
        with pytest.raises(ValueError):
            SloClassOverride(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"p95_ms": 0.0},
            {"availability": 0.0},
            {"availability": 1.0},
            {"max_shed_fraction": 1.5},
            {"windows": ()},
            {"windows": (BurnWindowSpec(), BurnWindowSpec(burn_threshold=4.0))},
            {
                "class_overrides": (
                    SloClassOverride("a"),
                    SloClassOverride("a", p95_ms=100.0),
                )
            },
        ),
    )
    def test_slo_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            SloSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        ({"windows": (1,)}, {"class_overrides": ("batch",)}),
    )
    def test_slo_spec_entry_types_checked(self, kwargs):
        with pytest.raises(TypeError):
            SloSpec(**kwargs)

    def test_lists_coerce_to_tuples(self):
        spec = SloSpec(
            windows=[BurnWindowSpec()],
            class_overrides=[SloClassOverride("batch", p95_ms=1000.0)],
        )
        assert isinstance(spec.windows, tuple)
        assert isinstance(spec.class_overrides, tuple)

    def test_slow_latency_and_override_lookup(self):
        spec = SloSpec(
            p95_ms=250.0,
            class_overrides=(SloClassOverride("batch", p95_ms=1000.0),),
        )
        assert spec.slow_latency_s == 0.25
        assert spec.override_for("batch") == SloClassOverride("batch", p95_ms=1000.0)
        assert spec.override_for("interactive") is None

    def test_round_trips_through_scenario_serde(self):
        slo = SloSpec(
            p95_ms=250.0,
            availability=0.995,
            max_shed_fraction=0.02,
            windows=(
                BurnWindowSpec("page", 0.04, 0.02, 10.0),
                BurnWindowSpec("warn", 0.5, 0.1, 1.5),
            ),
            class_overrides=(
                SloClassOverride("interactive", p95_ms=100.0),
                SloClassOverride("batch", availability=0.9),
            ),
        )
        s = monitored_scenario(telemetry=TelemetrySpec(slo=slo))
        assert Scenario.from_dict(s.to_dict()) == s
        assert Scenario.from_json(s.to_json()) == s
        json.dumps(s.to_dict())  # plain JSON types only


def timeline_doc(completed, shed=None, lost=None, slow=None, window_s=1.0):
    """A synthetic timeline document with per-window counter columns."""
    n = len(completed)
    zeros = [0.0] * n
    return {
        "t0_s": 0.0,
        "t_end_s": n * window_s,
        "window_s": window_s,
        "time_s": [(i + 1) * window_s for i in range(n)],
        "windows": {
            "completed": list(completed),
            "shed": list(shed if shed is not None else zeros),
            "lost": list(lost if lost is not None else zeros),
            "slow": list(slow if slow is not None else zeros),
        },
    }


def assert_well_formed(spans):
    by_kind: dict[str, list[AlertSpan]] = {}
    for span in spans:
        assert span.close_s >= span.open_s
        assert span.windows >= 1
        by_kind.setdefault(span.kind, []).append(span)
    for kind_spans in by_kind.values():
        ordered = sorted(kind_spans, key=lambda s: s.open_s)
        for prev, cur in zip(ordered, ordered[1:]):
            assert prev.close_s <= cur.open_s


class TestBurnAlerts:
    def test_clean_timeline_raises_nothing(self):
        doc = timeline_doc([10.0] * 100)
        assert evaluate_burn_alerts(doc, SloSpec()) == []

    def test_empty_timeline_raises_nothing(self):
        assert evaluate_burn_alerts(timeline_doc([]), SloSpec()) == []

    def test_shed_burst_pages_availability(self):
        # 5 windows of 50% shed against a 1% error budget: burn 50x, far
        # over the page threshold of 8
        shed = [0.0] * 100
        for i in range(40, 45):
            shed[i] = 10.0
        spans = evaluate_burn_alerts(timeline_doc([10.0] * 100, shed=shed), SloSpec())
        assert_well_formed(spans)
        kinds = {s.kind for s in spans}
        assert "page:availability" in kinds
        assert all(s.signal == "availability" for s in spans)
        page = next(s for s in spans if s.kind == "page:availability")
        assert 40.0 <= page.open_s <= 42.0
        assert page.close_s <= 47.0
        assert page.burn_at_open >= 8.0
        assert page.peak_burn >= page.burn_at_open

    def test_lost_requests_burn_availability_too(self):
        lost = [0.0] * 100
        for i in range(40, 45):
            lost[i] = 10.0
        spans = evaluate_burn_alerts(timeline_doc([10.0] * 100, lost=lost), SloSpec())
        assert any(s.signal == "availability" for s in spans)

    def test_slow_completions_page_latency(self):
        # every completion over target in a region: burn 1/0.05 = 20x
        slow = [0.0] * 100
        for i in range(40, 45):
            slow[i] = 10.0
        spans = evaluate_burn_alerts(timeline_doc([10.0] * 100, slow=slow), SloSpec())
        assert any(s.kind == "page:latency" for s in spans)
        assert_well_formed(spans)

    def test_alert_open_at_run_end_closes_at_t_end(self):
        shed = [0.0] * 100
        for i in range(95, 100):
            shed[i] = 10.0
        doc = timeline_doc([10.0] * 100, shed=shed)
        spans = evaluate_burn_alerts(doc, SloSpec())
        page = next(s for s in spans if s.kind == "page:availability")
        assert page.close_s == doc["t_end_s"]

    def test_spans_fold_consecutive_windows(self):
        shed = [0.0] * 100
        for i in range(40, 45):
            shed[i] = 10.0
        spans = evaluate_burn_alerts(timeline_doc([10.0] * 100, shed=shed), SloSpec())
        page = next(s for s in spans if s.kind == "page:availability")
        # one span covering the burst, not five one-window spans
        assert page.windows >= 4
        assert [s for s in spans if s.kind == "page:availability"] == [page]

    def test_rejects_non_timeline_documents(self):
        with pytest.raises(ValueError, match="timeline"):
            evaluate_burn_alerts({"windows": {}}, SloSpec())

    def test_rejects_ragged_columns(self):
        doc = timeline_doc([10.0] * 10)
        doc["windows"]["shed"] = [0.0] * 7
        with pytest.raises(ValueError, match="entries"):
            evaluate_burn_alerts(doc, SloSpec())

    @settings(max_examples=50, deadline=None)
    @given(
        columns=st.lists(
            st.tuples(
                st.integers(0, 20),
                st.integers(0, 20),
                st.integers(0, 5),
                st.integers(0, 20),
            ),
            min_size=1,
            max_size=40,
        ),
        window_s=st.sampled_from([0.001, 0.5, 2.0]),
    )
    def test_spans_always_well_formed(self, columns, window_s):
        completed, shed, lost, slow = (list(c) for c in zip(*columns))
        # slow completions cannot exceed completions
        slow = [min(s, c) for s, c in zip(slow, completed)]
        doc = timeline_doc(completed, shed=shed, lost=lost, slow=slow, window_s=window_s)
        spans = evaluate_burn_alerts(doc, SloSpec())
        assert_well_formed(spans)
        thresholds = {w.severity: w.burn_threshold for w in DEFAULT_BURN_WINDOWS}
        for span in spans:
            assert 0.0 <= span.open_s <= doc["t_end_s"]
            assert span.close_s <= doc["t_end_s"]
            assert span.burn_at_open >= thresholds[span.severity]
            assert span.peak_burn >= span.burn_at_open


class TestAlertSpan:
    def test_validation(self):
        with pytest.raises(ValueError, match="close_s"):
            AlertSpan("page", "latency", 2.0, 1.0, 8.0, 8.0, 1)
        with pytest.raises(ValueError, match="window"):
            AlertSpan("page", "latency", 1.0, 2.0, 8.0, 8.0, 0)

    def test_kind_and_dict_round_trip(self):
        span = AlertSpan("warn", "availability", 1.0, 2.0, 2.5, 3.0, 4)
        assert span.kind == "warn:availability"
        assert AlertSpan(**span.to_dict()) == span


class TestComplianceSummary:
    def test_all_targets_met(self):
        out = compliance_summary(
            SloSpec(),
            p95_latency_s=0.1,
            availability=1.0,
            shed_fraction=0.0,
        )
        assert out["ok"] is True
        assert out["pages"] == 0 and out["warns"] == 0

    def test_each_violation_flips_ok(self):
        base = dict(p95_latency_s=0.1, availability=1.0, shed_fraction=0.0)
        for key, bad in (
            ("p95_latency_s", 0.5),
            ("availability", 0.9),
            ("shed_fraction", 0.5),
        ):
            out = compliance_summary(SloSpec(), **{**base, key: bad})
            assert out["ok"] is False, key

    def test_alert_counts(self):
        spans = [
            AlertSpan("page", "availability", 0.0, 1.0, 9.0, 9.0, 1),
            AlertSpan("warn", "availability", 0.0, 2.0, 2.0, 3.0, 2),
            AlertSpan("warn", "latency", 1.0, 2.0, 2.0, 2.0, 1),
        ]
        out = compliance_summary(
            SloSpec(),
            p95_latency_s=0.1,
            availability=1.0,
            shed_fraction=0.0,
            alerts=spans,
        )
        assert out["pages"] == 1
        assert out["warns"] == 2


def small_report_doc() -> dict:
    samples = [0.0005, 0.001, 0.02]
    return {
        "scenario": "om-test",
        "kind": "fleet",
        "completed": 3,
        "shed": 1,
        "lost": 0,
        "retries": 2,
        "failures": 1,
        "generated_tokens": 18,
        "availability": 0.75,
        "goodput_rps": 10.0,
        "throughput_rps": 12.0,
        "makespan_s": 0.5,
        "shed_fraction": 0.25,
        "cost_usd": 1.25,
        "peak_replicas": 2,
        "latency_mean_s": sum(samples) / len(samples),
        "latency_hist": LatencyStats.from_samples(samples).histogram_dict(),
        "slo_attainment": {"default": 0.9},
        "slo": {"ok": False},
        "alerts": [
            {"severity": "page", "signal": "availability"},
            {"severity": "page", "signal": "availability"},
            {"severity": "warn", "signal": "latency"},
        ],
    }


class TestOpenMetrics:
    def test_exposition_round_trips(self):
        families = parse_openmetrics(openmetrics_text(small_report_doc()))
        assert families["repro_scenario"]["type"] == "gauge"
        name, labels, value = families["repro_scenario"]["samples"][0]
        assert labels == {"scenario": "om-test", "kind": "fleet"}
        counters = {
            "repro_requests_completed": 3.0,
            "repro_requests_shed": 1.0,
            "repro_request_retries": 2.0,
            "repro_replica_failures": 1.0,
            "repro_generated_tokens": 18.0,
        }
        for family, expect in counters.items():
            assert families[family]["samples"] == [(f"{family}_total", {}, expect)]

    def test_histogram_buckets_cumulative_and_complete(self):
        doc = small_report_doc()
        families = parse_openmetrics(openmetrics_text(doc))
        hist = families["repro_request_latency_seconds"]
        buckets = [
            (labels["le"], value)
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        ]
        assert len(buckets) == len(LATENCY_HIST_EDGES_S) + 1
        assert buckets[-1] == ("+Inf", 3.0)
        values = [v for _, v in buckets]
        assert values == sorted(values)
        count = next(v for n, _, v in hist["samples"] if n.endswith("_count"))
        assert count == doc["completed"]

    def test_alert_and_slo_families(self):
        families = parse_openmetrics(openmetrics_text(small_report_doc()))
        assert families["repro_slo_ok"]["samples"] == [("repro_slo_ok", {}, 0.0)]
        alerts = {
            (labels["severity"], labels["signal"]): value
            for _, labels, value in families["repro_alerts"]["samples"]
        }
        assert alerts == {("page", "availability"): 2.0, ("warn", "latency"): 1.0}
        attain = families["repro_slo_attainment_ratio"]["samples"]
        assert attain == [("repro_slo_attainment_ratio", {"class": "default"}, 0.9)]

    def test_monitored_run_exports_cleanly(self):
        report = run(monitored_scenario())
        families = parse_openmetrics(openmetrics_text(report.to_dict()))
        count = next(
            v
            for n, _, v in families["repro_request_latency_seconds"]["samples"]
            if n.endswith("_count")
        )
        assert count == report.completed == SERVING.num_requests
        assert "repro_slo_ok" in families

    @pytest.mark.parametrize(
        "mangle,match",
        (
            (lambda t: t.replace("# EOF\n", ""), "EOF"),
            (
                lambda t: t.replace(
                    "\n# HELP repro_scenario", "\n\n# HELP repro_scenario"
                ),
                "blank",
            ),
            (lambda t: "undeclared_metric 1\n" + t, "no TYPE"),
            (lambda t: t.replace("# TYPE repro_scenario gauge\n", ""), "before TYPE"),
            (lambda t: t.replace("repro_cost_usd 1.25", "repro_cost_usd nan"), "non-finite"),
            (lambda t: t.replace("repro_cost_usd 1.25", "repro_cost_usd"), "malformed"),
            (
                lambda t: t.replace("# EOF", "# TYPE repro_scenario gauge\n# EOF"),
                "duplicate TYPE",
            ),
        ),
    )
    def test_parser_rejects_mangled_expositions(self, mangle, match):
        text = mangle(openmetrics_text(small_report_doc()))
        with pytest.raises(ValueError, match=match):
            parse_openmetrics(text)

    def test_parser_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
            "h_sum 0.5\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_openmetrics(text)

    def test_parser_rejects_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 4\n"
            "h_sum 0.5\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="_count"):
            parse_openmetrics(text)

    def test_parser_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 3\n'
            "h_count 3\n"
            "h_sum 0.5\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="Inf"):
            parse_openmetrics(text)


class TestRunFacadeSlo:
    def test_monitored_report_carries_slo_fields(self):
        report = run(monitored_scenario())
        assert report.slo["ok"] in (True, False)
        assert set(report.detection) == {
            "outages",
            "brownouts",
            "observed_mttr_s",
            "scored",
        }
        for a in report.alerts:
            AlertSpan(**a)  # serialized spans reconstruct

    def test_report_dict_round_trips_slo_fields(self):
        from repro.scenarios import SimReport

        report = run(monitored_scenario())
        clone = SimReport.from_json(json.dumps(report.to_dict()))
        assert clone.slo == report.slo
        assert clone.alerts == report.alerts
        assert clone.detection == report.detection

    def test_unmonitored_run_has_empty_slo_fields(self):
        report = run(monitored_scenario(telemetry=None))
        assert report.slo == {}
        assert report.alerts == []
        assert report.detection == {}

    def test_explicit_recorder_without_slow_threshold_warns(self):
        from repro.obs.recorder import TimelineRecorder

        with pytest.warns(UserWarning, match="slow_latency_s"):
            report = run(monitored_scenario(), recorder=TimelineRecorder())
        # monitoring still runs; only the latency burn signal is degraded
        assert report.slo["ok"] in (True, False)
        assert report.timeline is not None

    def test_make_recorder_recorder_does_not_warn(self):
        import warnings as _warnings

        from repro.scenarios import make_recorder

        s = monitored_scenario()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            report = run(s, recorder=make_recorder(s))
        assert report.slo["ok"] in (True, False)

    def test_supplied_detector_reused_and_tee_timeline_surfaces(self):
        from repro.obs.detect import SignalDetector
        from repro.obs.recorder import TeeRecorder
        from repro.scenarios import make_recorder

        class MarkedDetector(SignalDetector):
            def summary(self):
                out = super().summary()
                out["marker"] = True
                return out

        s = monitored_scenario()
        det = MarkedDetector()
        report = run(s, recorder=TeeRecorder((make_recorder(s), det)))
        # the caller's detector instance is the one scored — no second
        # detector tee'd on top of the supplied one
        assert report.detection["marker"] is True
        # a timeline recorder nested inside a tee still surfaces its doc
        assert report.timeline is not None
        assert report.alerts == run(s).alerts


class TestAlertTraceSpans:
    def test_chrome_trace_carries_alert_and_detection_spans(self, tmp_path):
        from repro.obs.trace import validate_chrome_trace
        from repro.scenarios import get_scenario, make_recorder

        s = get_scenario("fleet-bad-day-smoke")
        s = dataclasses.replace(s, telemetry=TelemetrySpec(slo=SloSpec()))
        rec = make_recorder(s)
        report = run(s, recorder=rec, keep_raw=False)
        assert report.alerts  # the bad day actually alerts
        doc = rec.to_chrome_trace(alerts=report.alerts, detections=report.detection)
        assert validate_chrome_trace(doc) > 0
        names = {e["name"] for e in doc["traceEvents"] if e.get("cat") == "alert"}
        # burn-rate spans are named severity:signal; observed detections
        # sit on the replica rows next to the chaos ground-truth spans
        assert any(":" in name for name in names)
        assert "observed-outage" in names
        out = rec.write_chrome_trace(
            tmp_path / "slo.trace.json",
            alerts=report.alerts,
            detections=report.detection,
        )
        assert validate_chrome_trace(json.loads(out.read_text())) == len(
            doc["traceEvents"]
        )


class TestCli:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        monitored_scenario().save(path)
        return path

    def test_run_writes_parseable_openmetrics(self, tmp_path, spec_file, capsys):
        om = tmp_path / "metrics.om"
        out = tmp_path / "report.json"
        rc = self.run_cli(
            [
                "run",
                "--scenario",
                str(spec_file),
                "--out",
                str(out),
                "--openmetrics",
                str(om),
            ]
        )
        assert rc == 0
        families = parse_openmetrics(om.read_text())
        doc = json.loads(out.read_text())
        count = next(
            v
            for n, _, v in families["repro_request_latency_seconds"]["samples"]
            if n.endswith("_count")
        )
        assert count == doc["completed"]

    def test_run_prints_slo_summary(self, spec_file, capsys):
        assert self.run_cli(["run", "--scenario", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "SLO compliance" in out

    def test_report_renders_slo_for_monitored_reports(self, tmp_path, spec_file, capsys):
        out = tmp_path / "report.json"
        self.run_cli(["run", "--scenario", str(spec_file), "--out", str(out)])
        capsys.readouterr()
        assert self.run_cli(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "SLO compliance" in text

    def test_report_handles_slo_only_reports(self, tmp_path, spec_file, capsys):
        out = tmp_path / "report.json"
        self.run_cli(["run", "--scenario", str(spec_file), "--out", str(out)])
        doc = json.loads(out.read_text())
        del doc["timeline"]
        out.write_text(json.dumps(doc))
        capsys.readouterr()
        assert self.run_cli(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "no timeline recorded" in text
        assert "SLO compliance" in text

    def test_report_errors_clearly_without_timeline_or_slo(
        self, tmp_path, spec_file, capsys
    ):
        out = tmp_path / "report.json"
        self.run_cli(["run", "--scenario", str(spec_file), "--out", str(out)])
        doc = json.loads(out.read_text())
        for key in ("timeline", "slo", "alerts", "detection"):
            doc.pop(key, None)
        out.write_text(json.dumps(doc))
        capsys.readouterr()
        assert self.run_cli(["report", str(out)]) == 2
        err = capsys.readouterr().err
        assert "no timeline recorded" in err
        assert "Traceback" not in err

    def test_fleet_slo_flag(self, capsys):
        rc = self.run_cli(
            [
                "fleet",
                "--rate",
                "900",
                "--requests",
                "60",
                "--replicas",
                "2",
                "--slo",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SLO compliance" in out
