"""Integration tests for the event-driven fleet serving simulation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ClusterConfig, ExecutionMode, FleetConfig, ModelConfig, ServingConfig
from repro.fleet.requests import (
    FleetRequest,
    flash_crowd_arrivals,
    make_fleet_requests,
)
from repro.fleet.simulate import simulate_fleet_cluster_serving, simulate_fleet_serving
from repro.trace.markov import MarkovRoutingModel


@pytest.fixture
def model():
    return ModelConfig(name="fleet-test", num_layers=4, num_experts=8, d_model=64, num_heads=4)


@pytest.fixture
def cluster():
    return ClusterConfig(num_nodes=2, gpus_per_node=2)


@pytest.fixture
def serving():
    return ServingConfig(
        arrival="bursty",
        arrival_rate_rps=900.0,
        num_requests=80,
        generate_len=6,
        max_batch_requests=8,
        prompt_len=8,
        seed=0,
    )


class TestFleetRequest:
    def test_inherits_request_validation(self):
        with pytest.raises(ValueError):
            FleetRequest(0, -1.0, 8, 4)
        with pytest.raises(ValueError):
            FleetRequest(0, 0.0, 0, 4)

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            FleetRequest(0, 0.0, 8, 4, regime=-1)
        with pytest.raises(ValueError):
            FleetRequest(0, 0.0, 8, 4, priority=-1)


class TestFlashCrowd:
    def test_count_and_ordering(self, serving):
        reqs = flash_crowd_arrivals(serving, 4.0, 0.02, 0.03)
        assert len(reqs) == serving.num_requests
        times = np.array([q.arrival_s for q in reqs])
        assert (np.diff(times) > 0).all()
        assert [q.req_id for q in reqs] == list(range(len(reqs)))

    def test_flash_window_is_denser(self):
        cfg = ServingConfig(arrival_rate_rps=100.0, num_requests=4000, seed=1)
        reqs = flash_crowd_arrivals(cfg, 8.0, 5.0, 5.0)
        times = np.array([q.arrival_s for q in reqs])
        in_flash = ((times >= 5.0) & (times < 10.0)).sum() / 5.0
        before = (times < 5.0).sum() / 5.0
        assert in_flash > 3.0 * before

    def test_factor_one_is_plain_poisson_rate(self):
        cfg = ServingConfig(arrival_rate_rps=200.0, num_requests=4000, seed=2)
        reqs = flash_crowd_arrivals(cfg, 1.0, 1.0, 1.0)
        measured = len(reqs) / reqs[-1].arrival_s
        assert 0.85 * 200.0 < measured < 1.2 * 200.0

    def test_deterministic(self, serving):
        assert flash_crowd_arrivals(serving, 4.0, 0.02, 0.03) == flash_crowd_arrivals(
            serving, 4.0, 0.02, 0.03
        )

    def test_validation(self, serving):
        with pytest.raises(ValueError):
            flash_crowd_arrivals(serving, 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(serving, 2.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            flash_crowd_arrivals(serving, 2.0, -1.0, 1.0)


class TestMakeFleetRequests:
    def test_labels_in_range_and_deterministic(self, serving):
        from repro.engine.serving import make_arrivals

        base = make_arrivals(serving)
        fleet = FleetConfig(num_regimes=3, interactive_fraction=0.5)
        a = make_fleet_requests(base, fleet, np.random.default_rng(1))
        b = make_fleet_requests(base, fleet, np.random.default_rng(1))
        assert a == b
        assert all(0 <= q.regime < 3 for q in a)
        assert all(q.priority in (0, 1) for q in a)
        assert {q.req_id for q in a} == {q.req_id for q in base}

    def test_time_varying_mix(self, serving):
        from repro.engine.serving import make_arrivals

        base = make_arrivals(serving)
        fleet = FleetConfig(num_regimes=2)
        labelled = make_fleet_requests(
            base,
            fleet,
            np.random.default_rng(0),
            regime_weight_at=lambda t: (0.0, 1.0),
        )
        assert all(q.regime == 1 for q in labelled)

    def test_rejects_bad_weights(self, serving):
        from repro.engine.serving import make_arrivals

        base = make_arrivals(serving)
        fleet = FleetConfig(num_regimes=2)
        with pytest.raises(ValueError):
            make_fleet_requests(
                base, fleet, np.random.default_rng(0), regime_weight_at=lambda t: (0.7, 0.7)
            )


class TestFleetServing:
    def _run(self, model, cluster, serving, fleet, **kwargs):
        return simulate_fleet_cluster_serving(model, cluster, serving, fleet, **kwargs)

    def test_conservation(self, model, cluster, serving):
        fleet = FleetConfig(num_replicas=3, router="jsq", max_replicas=4)
        res = self._run(model, cluster, serving, fleet)
        assert res.served + len(res.shed) == serving.num_requests
        assert res.served == sum(r.served for r in res.replicas)
        for c in res.completed:
            assert c.latency_s > 0
            assert c.queue_s >= 0
            assert 0 <= c.replica_id < len(res.replicas)

    def test_deterministic(self, model, cluster, serving):
        fleet = FleetConfig(num_replicas=2, router="p2c")
        a = self._run(model, cluster, serving, fleet)
        b = self._run(model, cluster, serving, fleet)
        assert a.latency == b.latency
        assert a.makespan_s == b.makespan_s
        assert a.completed == b.completed

    def test_empty_requests(self, model, cluster):
        regimes = [MarkovRoutingModel.with_affinity(8, 4, 0.8)]
        from repro.core.placement.vanilla import vanilla_placement

        res = simulate_fleet_serving(
            [],
            model,
            cluster,
            regimes,
            [vanilla_placement(4, 8, 4)],
            FleetConfig(num_regimes=1),
        )
        assert res.completed == () and res.shed == () and res.makespan_s == 0.0
        assert res.throughput_rps == 0.0

    def test_validation(self, model, cluster):
        from repro.core.placement.vanilla import vanilla_placement

        regimes = [MarkovRoutingModel.with_affinity(8, 4, 0.8)]
        flat = vanilla_placement(4, 8, 4)
        with pytest.raises(ValueError, match="num_regimes"):
            simulate_fleet_serving(
                [], model, cluster, regimes, [flat], FleetConfig(num_regimes=2)
            )
        with pytest.raises(ValueError, match="placement"):
            simulate_fleet_serving(
                [], model, cluster, regimes, [], FleetConfig(num_regimes=1)
            )
        with pytest.raises(ValueError, match="max_batch"):
            simulate_fleet_serving(
                [], model, cluster, regimes, [flat],
                FleetConfig(num_regimes=1), max_batch_requests=0,
            )
        with pytest.raises(ValueError, match="shape"):
            bad = [MarkovRoutingModel.with_affinity(4, 4, 0.8)]
            simulate_fleet_serving(
                [], model, cluster, bad, [flat], FleetConfig(num_regimes=1)
            )

    @pytest.mark.parametrize("engine", ["event", "tick"])
    def test_out_of_range_regime_rejected_at_entry(self, model, cluster, engine):
        """Regression: a request labelled with an unmodelled regime used to
        be silently clamped onto the last regime (reshaping traffic and
        hiding labelling bugs); both engines now reject it up front."""
        from repro.core.placement.vanilla import vanilla_placement

        regimes = [MarkovRoutingModel.with_affinity(8, 4, 0.8)]
        flat = vanilla_placement(4, 8, 4)
        bad = [FleetRequest(0, 0.0, 8, 4, regime=3)]
        with pytest.raises(ValueError, match="regime 3.*only regimes 0..0"):
            simulate_fleet_serving(
                bad, model, cluster, regimes, [flat],
                FleetConfig(num_regimes=1, engine=engine),
            )

    def test_every_router_serves_everything_when_unloaded(
        self, model, cluster, serving
    ):
        for router in ("round-robin", "jsq", "p2c", "affinity"):
            fleet = FleetConfig(num_replicas=2, router=router)
            res = self._run(model, cluster, serving, fleet)
            assert res.served == serving.num_requests, router
            assert res.shed_fraction == 0.0

    def test_overload_sheds_with_reasons(self, model, cluster):
        overload = ServingConfig(
            arrival_rate_rps=50000.0,
            num_requests=300,
            generate_len=6,
            max_batch_requests=4,
            prompt_len=8,
            seed=3,
        )
        fleet = FleetConfig(
            num_replicas=1,
            router="jsq",
            slo_ms=0.5,
            batch_slo_ms=1.0,
            max_queue_per_replica=16,
        )
        res = self._run(model, cluster, overload, fleet)
        assert len(res.shed) > 0
        assert {s.reason for s in res.shed} <= {"deadline", "queue-full"}
        assert res.served + len(res.shed) == overload.num_requests
        # attainment accounts sheds as misses
        assert res.slo_attainment["interactive"] < 1.0

    def test_priority_class_jumps_queue(self, model, cluster):
        loaded = ServingConfig(
            arrival_rate_rps=20000.0,
            num_requests=200,
            generate_len=6,
            max_batch_requests=4,
            prompt_len=8,
            seed=4,
        )
        fleet = FleetConfig(
            num_replicas=1,
            router="jsq",
            interactive_fraction=0.3,
            slo_ms=10000.0,  # no shedding: isolate the queueing-order effect
            batch_slo_ms=20000.0,
            max_queue_per_replica=500,
        )
        res = self._run(model, cluster, loaded, fleet)
        assert res.shed == ()
        inter = [c.queue_s for c in res.completed if c.request.priority == 0]
        batch = [c.queue_s for c in res.completed if c.request.priority == 1]
        assert np.mean(inter) < np.mean(batch)

    def test_autoscaler_reacts_to_flash_crowd(self, model, cluster):
        # per-replica capacity here is ~10k req/s (batch 8, ~0.1 ms steps);
        # 15k offered across 2 replicas leaves headroom, the 4x flash does not
        base = ServingConfig(
            arrival_rate_rps=15000.0,
            num_requests=600,
            generate_len=8,
            max_batch_requests=8,
            prompt_len=8,
            seed=5,
        )
        arrivals = flash_crowd_arrivals(base, 4.0, 0.005, 0.05)
        fleet = FleetConfig(
            num_replicas=2,
            router="jsq",
            autoscale=True,
            min_replicas=2,
            max_replicas=8,
            slo_ms=50.0,
            batch_slo_ms=500.0,
            autoscale_check_every_s=0.002,
            scale_up_queue_per_replica=4.0,
            scale_dwell_checks=2,
        )
        res = self._run(model, cluster, base, fleet, arrivals=arrivals)
        ups = [e for e in res.scale_events if e.kind == "up"]
        assert ups, "flash crowd must trigger scale-up"
        assert all(e.cold_start_s > 0 for e in ups)
        assert res.peak_replicas > 2
        static = self._run(
            model, cluster, base, dataclasses.replace(fleet, autoscale=False),
            arrivals=arrivals,
        )
        assert res.shed_fraction <= static.shed_fraction

    def test_scale_down_drains_idle_replicas(self, model, cluster):
        # a long quiet tail after the initial burst: the fleet should shrink
        quiet = ServingConfig(
            arrival_rate_rps=20.0,
            num_requests=60,
            generate_len=4,
            max_batch_requests=8,
            prompt_len=8,
            seed=6,
        )
        fleet = FleetConfig(
            num_replicas=4,
            router="jsq",
            autoscale=True,
            min_replicas=1,
            max_replicas=4,
            autoscale_check_every_s=0.05,
            scale_down_queue_per_replica=0.5,
            scale_dwell_checks=2,
        )
        res = self._run(model, cluster, quiet, fleet)
        downs = [e for e in res.scale_events if e.kind == "down"]
        assert downs
        assert res.final_replicas < 4
        assert res.served == quiet.num_requests  # draining loses nothing

    def test_online_replacement_path_runs(self, model, cluster, serving):
        fleet = FleetConfig(num_replicas=2, router="p2c", replace=True)
        res = self._run(model, cluster, serving, fleet)
        assert res.served == serving.num_requests
        assert all(r.replacements >= 0 for r in res.replicas)

    def test_vanilla_mode(self, model, cluster, serving):
        fleet = FleetConfig(num_replicas=2, router="round-robin")
        res = self._run(
            model, cluster, serving, fleet, mode=ExecutionMode.VANILLA
        )
        assert res.served == serving.num_requests

    def test_replica_stats_consistent(self, model, cluster, serving):
        fleet = FleetConfig(num_replicas=2, router="jsq")
        res = self._run(model, cluster, serving, fleet)
        for s in res.replicas:
            assert s.decode_steps > 0
            assert s.busy_s > 0
            assert 0 < s.mean_batch_size <= serving.max_batch_requests
