"""Unit tests for repro.cluster.traffic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.collectives import allgather_cost, alltoall_cost
from repro.cluster.topology import Tier, Topology
from repro.cluster.traffic import TrafficLedger
from repro.config import ClusterConfig


@pytest.fixture
def topo() -> Topology:
    return Topology(ClusterConfig(num_nodes=2, gpus_per_node=2))


class TestLedger:
    def test_empty(self):
        ledger = TrafficLedger()
        assert ledger.total_time_s == 0.0
        assert ledger.total_bytes == 0.0
        assert ledger.summary() == {}

    def test_record_accumulates(self, topo):
        ledger = TrafficLedger()
        res = alltoall_cost(topo, 1e6)
        ledger.record(res)
        ledger.record(res)
        assert ledger.total_time_s == pytest.approx(2 * res.time_s)
        assert ledger.count_by_op["alltoall"] == 2

    def test_label_override(self, topo):
        ledger = TrafficLedger()
        res = alltoall_cost(topo, 1e6)
        ledger.record(res, "dispatch")
        ledger.record(res, "combine")
        assert ledger.time_of("dispatch") == pytest.approx(res.time_s)
        assert ledger.time_of("dispatch", "combine") == pytest.approx(2 * res.time_s)
        assert "alltoall" not in ledger.time_by_op

    def test_bytes_by_tier(self, topo):
        ledger = TrafficLedger()
        ledger.record(alltoall_cost(topo, 1e6))
        assert ledger.bytes_of("alltoall", Tier.INTER) > 0
        assert ledger.bytes_of("alltoall") == pytest.approx(
            ledger.bytes_of("alltoall", Tier.LOCAL)
            + ledger.bytes_of("alltoall", Tier.INTRA)
            + ledger.bytes_of("alltoall", Tier.INTER)
        )

    def test_cross_gpu_excludes_local(self, topo):
        ledger = TrafficLedger()
        traffic = np.zeros((4, 4))
        np.fill_diagonal(traffic, 100.0)
        traffic[0, 1] = 50.0
        from repro.cluster.collectives import alltoall_matrix

        ledger.record(alltoall_matrix(topo, traffic))
        assert ledger.cross_gpu_bytes() == pytest.approx(50.0)

    def test_inter_node_bytes(self, topo):
        ledger = TrafficLedger()
        from repro.cluster.collectives import alltoall_matrix

        traffic = np.zeros((4, 4))
        traffic[0, 2] = 77.0
        ledger.record(alltoall_matrix(topo, traffic))
        assert ledger.inter_node_bytes() == pytest.approx(77.0)

    def test_merge(self, topo):
        a, b = TrafficLedger(), TrafficLedger()
        a.record(alltoall_cost(topo, 1e5))
        b.record(allgather_cost(topo, 1e5))
        merged = a.merge(b)
        assert merged.total_time_s == pytest.approx(a.total_time_s + b.total_time_s)
        assert set(merged.time_by_op) == {"alltoall", "allgather"}

    def test_summary_keys(self, topo):
        ledger = TrafficLedger()
        ledger.record(alltoall_cost(topo, 1e5))
        s = ledger.summary()["alltoall"]
        assert set(s) == {"time_s", "count", "bytes", "inter_node_bytes"}
