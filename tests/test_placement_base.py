"""Unit tests for repro.core.placement.base."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.placement.base import Placement, placement_locality
from repro.core.placement.vanilla import vanilla_placement
from repro.trace.events import RoutingTrace


@pytest.fixture
def placement() -> Placement:
    # 2 layers x 4 experts on 2 GPUs
    gpu_of = np.array([[0, 0, 1, 1], [0, 1, 0, 1]])
    return Placement(gpu_of, num_gpus=2)


class TestValidation:
    def test_valid(self, placement):
        assert placement.num_layers == 2
        assert placement.num_experts == 4
        assert placement.experts_per_gpu == 2

    def test_rejects_imbalance(self):
        with pytest.raises(ValueError, match="load-balance"):
            Placement(np.array([[0, 0, 0, 1]]), num_gpus=2)

    def test_rejects_out_of_range_gpu(self):
        with pytest.raises(ValueError):
            Placement(np.array([[0, 1, 2, 1]]), num_gpus=2)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            Placement(np.array([[0, 1, 0]]), num_gpus=2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            Placement(np.zeros(4, dtype=int), num_gpus=2)


class TestQueries:
    def test_experts_on_gpu(self, placement):
        assert placement.experts_on_gpu(0, 0).tolist() == [0, 1]
        assert placement.experts_on_gpu(1, 0).tolist() == [0, 2]

    def test_node_of(self, placement):
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=2)
        nodes = placement.node_of(cluster)
        assert (nodes == 0).all()

    def test_node_of_cluster_mismatch(self, placement):
        with pytest.raises(ValueError):
            placement.node_of(ClusterConfig(num_nodes=2, gpus_per_node=2))

    def test_assignment_matrix(self, placement):
        x = placement.assignment_matrix(0)
        assert x.shape == (2, 4)
        assert (x.sum(axis=0) == 1).all()  # formula 10
        assert (x.sum(axis=1) == 2).all()  # formula 9

    def test_relabel_layer(self, placement):
        new = placement.relabel_layer(0, np.array([1, 1, 0, 0]))
        assert new.experts_on_gpu(0, 1).tolist() == [0, 1]
        assert new is not placement

    def test_relabel_layer_validates(self, placement):
        with pytest.raises(ValueError):
            placement.relabel_layer(0, np.array([1, 1, 1, 0]))


class TestPersistence:
    def test_roundtrip(self, placement, tmp_path):
        p = tmp_path / "placement.npz"
        placement.save(p)
        loaded = Placement.load(p)
        assert np.array_equal(loaded.gpu_of, placement.gpu_of)
        assert loaded.num_gpus == placement.num_gpus


class TestLocality:
    def test_perfectly_local_trace(self):
        placement = Placement(np.array([[0, 0, 1, 1], [0, 0, 1, 1]]), num_gpus=2)
        paths = np.array([[0, 1], [2, 3], [1, 0]])
        trace = RoutingTrace(paths, num_experts=4)
        stats = placement_locality(placement, trace)
        assert stats.gpu_stay_fraction == 1.0
        assert stats.crossings_per_token == 0.0

    def test_fully_crossing_trace(self):
        placement = Placement(np.array([[0, 0, 1, 1], [0, 0, 1, 1]]), num_gpus=2)
        paths = np.array([[0, 2], [3, 1]])
        trace = RoutingTrace(paths, num_experts=4)
        stats = placement_locality(placement, trace)
        assert stats.gpu_stay_fraction == 0.0
        assert stats.crossings_per_token == 1.0

    def test_node_vs_gpu_granularity(self):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        placement = vanilla_placement(2, 8, 4)
        # expert 0 -> gpu 0; expert 2 -> gpu 1 (same node); expert 4 -> gpu 2
        paths = np.array([[0, 2], [0, 4]])
        trace = RoutingTrace(paths, num_experts=8)
        stats = placement_locality(placement, trace, cluster)
        assert stats.gpu_stay_fraction == 0.0
        assert stats.node_stay_fraction == 0.5

    def test_shape_mismatch(self, placement):
        trace = RoutingTrace(np.zeros((3, 5), dtype=int), num_experts=4)
        with pytest.raises(ValueError):
            placement_locality(placement, trace)

    def test_empty_trace(self, placement):
        trace = RoutingTrace(np.zeros((0, 2), dtype=int), num_experts=4)
        stats = placement_locality(placement, trace)
        assert stats.gpu_stay_fraction == 1.0
        assert stats.transitions == 0

    def test_transition_count(self, placement):
        trace = RoutingTrace(np.zeros((10, 2), dtype=int), num_experts=4)
        stats = placement_locality(placement, trace)
        assert stats.transitions == 10  # (L-1) * N
