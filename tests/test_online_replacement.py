"""Tests for online drift-aware re-placement.

Covers the full loop: the streaming affinity estimator (decayed counts,
convergence, regime-switch forgetting), the CountTrace solver bridge, the
kept-mass monitors, the migration cost model, the replacement policy and
replacer, the drift scenario generators, the placement-aware step timer
(checked against the batched engine), and the online serving simulation
end to end.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster.collectives import allgather_cost
from repro.cluster.topology import Topology
from repro.config import (
    ClusterConfig,
    ExecutionMode,
    GatingKind,
    InferenceConfig,
    ModelConfig,
    ServingConfig,
)
from repro.core.affinity import StreamingAffinityEstimator
from repro.core.online import (
    OnlineReplacer,
    ReplacementPolicy,
    kept_mass_fraction,
    model_kept_mass,
    plan_migration,
)
from repro.core.placement.registry import solve_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.executor import simulate_inference
from repro.engine.serving import (
    PlacementStepTimer,
    poisson_arrivals,
    simulate_online_cluster_serving,
    simulate_online_serving,
)
from repro.engine.workload import (
    AbruptDrift,
    DRIFT_KINDS,
    DiurnalDrift,
    GradualDrift,
    StaticRouting,
    make_decode_workload,
    make_drift_scenario,
)
from repro.trace.events import CountTrace
from repro.trace.markov import MarkovRoutingModel


@pytest.fixture
def regime_a() -> MarkovRoutingModel:
    return MarkovRoutingModel.with_affinity(8, 4, 0.9, rng=np.random.default_rng(3))


@pytest.fixture
def regime_b() -> MarkovRoutingModel:
    return MarkovRoutingModel.with_affinity(8, 4, 0.9, rng=np.random.default_rng(104))


class TestCountTrace:
    def test_shape_and_access(self):
        counts = np.ones((3, 4, 4))
        ct = CountTrace(counts)
        assert ct.num_layers == 4 and ct.num_experts == 4
        assert ct.total_mass == pytest.approx(48.0)
        assert np.array_equal(ct.transition_counts(2), np.ones((4, 4)))
        assert np.array_equal(ct.transition_counts(1, 2), np.ones((4, 4)))

    def test_conditional_rows_stochastic(self):
        rng = np.random.default_rng(0)
        ct = CountTrace(rng.random((2, 5, 5)))
        cond = ct.conditional_matrix(0)
        assert np.allclose(cond.sum(axis=1), 1.0)

    def test_unobserved_rows_uniform(self):
        counts = np.zeros((1, 4, 4))
        counts[0, 0, 1] = 2.0
        cond = CountTrace(counts).conditional_matrix(0)
        assert cond[0, 1] == 1.0
        assert np.allclose(cond[3], 0.25)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            CountTrace(np.ones((3, 4)))
        with pytest.raises(ValueError):
            CountTrace(np.ones((2, 3, 4)))
        with pytest.raises(ValueError):
            CountTrace(-np.ones((1, 4, 4)))

    def test_multi_hop_rejected(self):
        ct = CountTrace(np.ones((3, 4, 4)))
        with pytest.raises(ValueError):
            ct.transition_counts(0, 2)
        with pytest.raises(IndexError):
            ct.transition_counts(3)

    def test_solvers_accept_count_trace(self, regime_a):
        """The whole point: a CountTrace drops into the solver family."""
        est = StreamingAffinityEstimator(8, 4, halflife_tokens=1000)
        est.update(regime_a.sample(1500, np.random.default_rng(0)).paths)
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        for strategy in ("greedy", "ilp", "staged", "local-search"):
            p = solve_placement(strategy, est.as_trace(), cluster)
            assert p.num_gpus == 4


class TestStreamingEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingAffinityEstimator(0, 4)
        with pytest.raises(ValueError):
            StreamingAffinityEstimator(8, 1)
        with pytest.raises(ValueError):
            StreamingAffinityEstimator(8, 4, halflife_tokens=0)
        est = StreamingAffinityEstimator(8, 4)
        with pytest.raises(ValueError):
            est.update(np.zeros((5, 3), dtype=int))  # wrong layer count
        with pytest.raises(ValueError):
            est.update(np.full((5, 4), 8))  # expert id out of range

    def test_empty_update_is_noop(self):
        est = StreamingAffinityEstimator(8, 4)
        est.update(np.empty((0, 4), dtype=int))
        assert est.effective_tokens == 0.0
        assert est.counts_stack().sum() == 0.0

    def test_effective_tokens_saturates_below_total(self):
        est = StreamingAffinityEstimator(4, 3, halflife_tokens=100)
        rng = np.random.default_rng(0)
        m = MarkovRoutingModel.with_affinity(4, 3, 0.5)
        for _ in range(30):
            est.update(m.sample(50, rng).paths)
        assert est.total_tokens == 1500
        # geometric sum: effective mass is bounded by ~halflife / ln 2
        assert est.effective_tokens < 1500
        assert est.effective_tokens < 100 / np.log(2) + 50

    def test_converges_to_stationary_transitions(self, regime_a):
        """Decayed conditionals approach the fixed router's true matrices."""
        est = StreamingAffinityEstimator(8, 4, halflife_tokens=4000)
        rng = np.random.default_rng(1)
        for _ in range(40):
            est.update(regime_a.sample(200, rng).paths)
        for j in range(3):
            err = np.abs(est.conditional_matrix(j) - regime_a.transitions[j]).max()
            assert err < 0.1

    def test_regime_switch_forgotten_within_window(self, regime_a, regime_b):
        """After ~4 halflives of new traffic the old regime is gone."""
        halflife = 250
        est = StreamingAffinityEstimator(8, 4, halflife_tokens=halflife)
        rng = np.random.default_rng(2)
        for _ in range(20):
            est.update(regime_a.sample(100, rng).paths)

        def dist_to(model):
            return max(
                np.abs(est.conditional_matrix(j) - model.transitions[j]).max()
                for j in range(3)
            )

        assert dist_to(regime_a) < dist_to(regime_b)
        for _ in range(10):  # 1000 tokens = 4 halflives of regime B
            est.update(regime_b.sample(100, rng).paths)
        assert dist_to(regime_b) < dist_to(regime_a)

    def test_as_trace_snapshot_independent(self):
        est = StreamingAffinityEstimator(4, 3)
        est.update(np.zeros((10, 3), dtype=int))
        snap = est.as_trace()
        before = snap.counts.copy()
        est.update(np.ones((10, 3), dtype=int))
        assert np.array_equal(snap.counts, before)

    def test_reset(self):
        est = StreamingAffinityEstimator(4, 3)
        est.update(np.zeros((10, 3), dtype=int))
        est.reset()
        assert est.effective_tokens == 0.0 and est.counts_stack().sum() == 0.0
        assert est.total_tokens == 10  # lifetime counter survives


class TestKeptMass:
    def test_estimator_matches_analytic(self, regime_a):
        """Streaming kept mass converges to the analytic model kept mass."""
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        trace = regime_a.sample(3000, np.random.default_rng(5))
        placement = solve_placement("staged", trace, cluster)
        est = StreamingAffinityEstimator(8, 4, halflife_tokens=5000)
        rng = np.random.default_rng(6)
        for _ in range(30):
            est.update(regime_a.sample(200, rng).paths)
        streamed = kept_mass_fraction(placement, est.counts_stack())
        analytic = model_kept_mass(placement, regime_a)
        assert streamed == pytest.approx(analytic, abs=0.05)

    def test_empty_window_is_one(self):
        p = vanilla_placement(4, 8, 2)
        assert kept_mass_fraction(p, np.zeros((3, 8, 8))) == 1.0

    def test_shape_mismatch_rejected(self, regime_a):
        p = vanilla_placement(4, 8, 2)
        with pytest.raises(ValueError):
            kept_mass_fraction(p, np.zeros((2, 8, 8)))
        with pytest.raises(ValueError):
            model_kept_mass(vanilla_placement(3, 8, 2), regime_a)

    def test_single_gpu_keeps_everything(self, regime_a):
        p = vanilla_placement(4, 8, 1)
        assert model_kept_mass(p, regime_a) == pytest.approx(1.0)


class TestMigration:
    @pytest.fixture
    def tiny_model(self):
        return ModelConfig(name="m", num_layers=4, num_experts=8, d_model=32, num_heads=4)

    def test_noop_for_identical_placements(self, tiny_model):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        p = vanilla_placement(4, 8, 4)
        plan = plan_migration(p, p, cluster, tiny_model)
        assert plan.is_noop and plan.stall_s == 0.0 and plan.moved_bytes == 0

    def test_single_expert_move_priced_by_link(self, tiny_model):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        old = vanilla_placement(4, 8, 4)
        # swap two experts between GPUs 0 and 1 (same node) on one layer
        new_gpus = old.gpu_of[0].copy()
        new_gpus[[0, 2]] = new_gpus[[2, 0]]
        new = old.relabel_layer(0, new_gpus)
        plan = plan_migration(old, new, cluster, tiny_model)
        assert plan.moved_experts == 2
        assert plan.moved_bytes == 2 * tiny_model.expert_bytes()
        # both transfers touch GPUs 0 and 1, so they serialize at endpoints
        link = cluster.intra_link
        expected = 2 * link.transfer_time(tiny_model.expert_bytes())
        assert plan.stall_s == pytest.approx(expected)

    def test_inter_node_moves_cost_more(self, tiny_model):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        old = vanilla_placement(4, 8, 4)
        intra = old.relabel_layer(0, np.array([1, 1, 0, 0, 2, 2, 3, 3]))
        inter = old.relabel_layer(0, np.array([2, 2, 1, 1, 0, 0, 3, 3]))
        t_intra = plan_migration(old, intra, cluster, tiny_model).stall_s
        t_inter = plan_migration(old, inter, cluster, tiny_model).stall_s
        assert t_inter > t_intra

    def test_rejects_mismatched_shapes(self, tiny_model):
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        with pytest.raises(ValueError):
            plan_migration(
                vanilla_placement(4, 8, 4), vanilla_placement(3, 8, 4), cluster, tiny_model
            )
        with pytest.raises(ValueError):
            plan_migration(
                vanilla_placement(4, 8, 2),
                vanilla_placement(4, 8, 2),
                cluster,
                tiny_model,
            )


class TestReplacementPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_every_steps": 0},
            {"kept_mass_drop": 0.0},
            {"kept_mass_drop": 1.0},
            {"min_effective_tokens": -1},
            {"cooldown_steps": -1},
            {"replace_every_steps": 0},
            {"solver_passes": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ReplacementPolicy(**kwargs)

    def test_defaults_valid(self):
        ReplacementPolicy()


class TestOnlineReplacer:
    @pytest.fixture
    def setup(self, regime_a):
        model = ModelConfig(name="m", num_layers=4, num_experts=8, d_model=32, num_heads=4)
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        trace = regime_a.sample(2000, np.random.default_rng(7))
        placement = solve_placement("staged", trace, cluster)
        return model, cluster, placement

    def _replacer(self, model, cluster, **policy_kw):
        defaults = dict(
            check_every_steps=1,
            kept_mass_drop=0.15,
            min_effective_tokens=100,
            cooldown_steps=2,
            solver_passes=6,
        )
        defaults.update(policy_kw)
        return OnlineReplacer(
            model,
            cluster,
            policy=ReplacementPolicy(**defaults),
            estimator=StreamingAffinityEstimator(8, 4, halflife_tokens=200),
            rng=np.random.default_rng(8),
        )

    def test_no_trigger_under_stationary_traffic(self, setup, regime_a):
        model, cluster, placement = setup
        rep = self._replacer(model, cluster)
        rng = np.random.default_rng(9)
        for step in range(1, 30):
            rep.observe(regime_a.sample(50, rng).paths)
            assert rep.maybe_replace(step, float(step), placement) is None
        assert rep.events == []

    def test_detects_regime_switch_within_window(self, setup, regime_a, regime_b):
        """A switch must trigger a migration within the estimator window."""
        model, cluster, placement = setup
        rep = self._replacer(model, cluster)
        rng = np.random.default_rng(10)
        for step in range(1, 11):
            rep.observe(regime_a.sample(50, rng).paths)
            rep.maybe_replace(step, float(step), placement)
        assert rep.events == []

        replaced_at = None
        current = placement
        for step in range(11, 40):  # 50 tokens/step; window halflife = 200
            rep.observe(regime_b.sample(50, rng).paths)
            result = rep.maybe_replace(step, float(step), current)
            if result is not None:
                current, event = result
                replaced_at = step
                break
        assert replaced_at is not None and replaced_at <= 30
        assert event.kept_after > event.kept_before
        assert event.moved_experts > 0 and event.stall_s > 0
        assert current.strategy == "online"
        # the migrated placement really serves regime B better
        assert model_kept_mass(current, regime_b) > model_kept_mass(placement, regime_b)

    def test_cooldown_blocks_back_to_back_migrations(self, setup, regime_a, regime_b):
        model, cluster, placement = setup
        rep = self._replacer(model, cluster, cooldown_steps=1000)
        rng = np.random.default_rng(11)
        for step in range(1, 11):
            rep.observe(regime_a.sample(50, rng).paths)
            rep.maybe_replace(step, float(step), placement)
        current = placement
        for step in range(11, 60):
            rep.observe(regime_b.sample(50, rng).paths)
            result = rep.maybe_replace(step, float(step), current)
            if result is not None:
                current = result[0]
        assert len(rep.events) <= 1

    def test_forced_cadence_skips_pointless_migrations(self, setup, regime_a):
        """--replace-every must not thrash when the placement is already
        optimal for the live traffic: a forced solve that finds nothing
        better migrates nothing."""
        model, cluster, placement = setup
        rep = self._replacer(model, cluster, replace_every_steps=5, cooldown_steps=0)
        rng = np.random.default_rng(12)
        for step in range(1, 26):
            rep.observe(regime_a.sample(100, rng).paths)
            result = rep.maybe_replace(step, float(step), placement)
            if result is not None:
                placement, _ = result
        # stationary traffic on a near-optimal start: at most one touch-up
        assert len(rep.events) <= 1

    def test_forced_cadence_not_gated_by_check_cadence(self, setup, regime_a, regime_b):
        """Regression: --replace-every N must be evaluated at every multiple
        of N, even when N is not a multiple of check_every_steps —
        otherwise the forced cadence silently becomes lcm(N, check)."""
        model, cluster, placement = setup
        rep = self._replacer(
            model,
            cluster,
            check_every_steps=8,
            replace_every_steps=10,  # not a multiple of 8
            kept_mass_drop=0.9,  # degradation trigger effectively disabled
            cooldown_steps=0,
            min_effective_tokens=100,
        )
        rng = np.random.default_rng(13)
        for step in range(1, 10):
            rep.observe(regime_a.sample(100, rng).paths)
            rep.maybe_replace(step, float(step), placement)
        # drift the traffic: with the drop trigger disabled, only the forced
        # cadence can migrate — and its steps (10, 20, 30) are never
        # multiples of check_every_steps=8
        for step in range(10, 31):
            rep.observe(regime_b.sample(100, rng).paths)
            result = rep.maybe_replace(step, float(step), placement)
            if result is not None:
                placement = result[0]
        assert rep.events, "forced cadence never fired off the check cadence"
        assert all(e.step % 10 == 0 for e in rep.events)
        assert all(e.step % 8 != 0 for e in rep.events)

    def test_estimator_shape_must_match_model(self, setup):
        model, cluster, _ = setup
        with pytest.raises(ValueError):
            OnlineReplacer(
                model, cluster, estimator=StreamingAffinityEstimator(16, 4)
            )


class TestDriftScenarios:
    def test_static_routing(self, regime_a):
        s = StaticRouting(regime_a)
        assert s.model_at(0.0) is regime_a and s.model_at(1e9) is regime_a
        assert s.num_experts == 8 and s.num_layers == 4

    def test_abrupt_switch(self, regime_a, regime_b):
        s = AbruptDrift(regime_a, regime_b, switch_t=10.0)
        assert s.model_at(9.99) is regime_a
        assert s.model_at(10.0) is regime_b

    def test_gradual_endpoints_and_midpoint(self, regime_a, regime_b):
        s = GradualDrift(regime_a, regime_b, t_start=0.0, t_end=10.0)
        assert s.model_at(-5.0) is regime_a
        assert s.model_at(15.0) is regime_b
        mid = s.model_at(5.0)
        expected = 0.5 * regime_a.transitions + 0.5 * regime_b.transitions
        assert np.allclose(mid.transitions, expected)
        assert np.allclose(mid.transitions.sum(axis=2), 1.0)

    def test_gradual_cache_reuses_quantised_blends(self, regime_a, regime_b):
        s = GradualDrift(regime_a, regime_b, t_start=0.0, t_end=10.0)
        assert s.model_at(5.0) is s.model_at(5.001)

    def test_diurnal_periodicity(self, regime_a, regime_b):
        s = DiurnalDrift(regime_a, regime_b, period_s=10.0)
        assert s.model_at(0.0) is regime_a
        assert s.model_at(5.0) is regime_b  # half period: full swing
        assert s.model_at(10.0) is regime_a

    def test_validation(self, regime_a, regime_b):
        small = MarkovRoutingModel.with_affinity(4, 4, 0.5)
        with pytest.raises(ValueError):
            AbruptDrift(regime_a, small, switch_t=1.0)
        with pytest.raises(ValueError):
            GradualDrift(regime_a, regime_b, t_start=5.0, t_end=5.0)
        with pytest.raises(ValueError):
            DiurnalDrift(regime_a, regime_b, period_s=0.0)

    def test_factory(self):
        for kind in DRIFT_KINDS:
            s = make_drift_scenario(kind, 8, 4, horizon_s=10.0, seed=1)
            assert s.num_experts == 8 and s.num_layers == 4
        with pytest.raises(ValueError):
            make_drift_scenario("sideways", 8, 4, horizon_s=10.0)
        with pytest.raises(ValueError):
            make_drift_scenario("abrupt", 8, 4, horizon_s=0.0)

    def test_factory_regimes_differ(self):
        s = make_drift_scenario("abrupt", 8, 4, horizon_s=10.0, seed=2)
        assert not np.allclose(s.model_at(0.0).transitions, s.model_at(9.0).transitions)


class TestPlacementStepTimer:
    @pytest.fixture
    def setup(self, small_model, small_cluster, regime_a):
        trace = regime_a.sample(2000, np.random.default_rng(1))
        placement = solve_placement("staged", trace, small_cluster)
        return small_model, small_cluster, regime_a, placement

    @pytest.mark.parametrize(
        "mode", [ExecutionMode.EXFLOW, ExecutionMode.CONTEXT_COHERENT, ExecutionMode.VANILLA]
    )
    def test_matches_engine_single_iteration(self, setup, mode):
        """On a one-iteration workload the timer must reproduce the batched
        engine's step cost exactly (up to the one-time prompt AllGather the
        coherent modes charge before inference)."""
        model, cluster, routing, placement = setup
        infer = InferenceConfig(
            requests_per_gpu=3, prompt_len=16, generate_len=1, mode=mode
        )
        wl = make_decode_workload(
            model, cluster, infer, routing=routing, rng=np.random.default_rng(5)
        )
        run = simulate_inference(model, cluster, infer, placement, wl)
        timer = PlacementStepTimer(model, cluster, mode=mode)
        ctx = np.full(wl.num_requests, infer.prompt_len)
        step = timer.step_time(wl.paths[0], wl.home_gpu, ctx, placement)
        expected = run.total_time_s
        if mode.uses_context_coherence:
            payload = np.bincount(wl.home_gpu, minlength=cluster.num_gpus).astype(float)
            payload *= infer.prompt_len * timer.token_bytes
            expected -= allgather_cost(Topology(cluster), payload).time_s
        assert step == pytest.approx(expected, rel=1e-12)

    def test_matches_engine_top2(self, small_cluster, regime_a):
        model = ModelConfig(
            name="t2", num_layers=4, num_experts=8, d_model=32, num_heads=4,
            gating=GatingKind.TOP2,
        )
        infer = InferenceConfig(
            requests_per_gpu=2, prompt_len=8, generate_len=1, mode=ExecutionMode.VANILLA
        )
        wl = make_decode_workload(
            model, small_cluster, infer, routing=regime_a, rng=np.random.default_rng(6)
        )
        placement = vanilla_placement(4, 8, small_cluster.num_gpus)
        run = simulate_inference(model, small_cluster, infer, placement, wl)
        timer = PlacementStepTimer(model, small_cluster, mode=ExecutionMode.VANILLA)
        ctx = np.full(wl.num_requests, infer.prompt_len)
        step = timer.step_time(
            wl.paths[0], wl.home_gpu, ctx, placement, wl.secondary_paths[0]
        )
        assert step == pytest.approx(run.total_time_s, rel=1e-12)

    def test_admission_free_for_vanilla(self, setup):
        model, cluster, _, _ = setup
        timer = PlacementStepTimer(model, cluster, mode=ExecutionMode.VANILLA)
        assert timer.admission_time(np.array([0, 1]), np.array([16, 16])) == 0.0

    def test_admission_positive_for_coherent(self, setup):
        model, cluster, _, _ = setup
        timer = PlacementStepTimer(model, cluster, mode=ExecutionMode.EXFLOW)
        adm = timer.admission_time(np.array([0, 1]), np.array([16, 16]))
        assert adm > 0
        # more prompt tokens cost more to replicate
        assert timer.admission_time(np.array([0, 1]), np.array([64, 64])) > adm

    def test_input_validation(self, setup):
        model, cluster, _, placement = setup
        timer = PlacementStepTimer(model, cluster)
        ok_paths = np.zeros((2, model.num_moe_layers), dtype=int)
        home = np.zeros(2, dtype=int)
        ctx = np.full(2, 8)
        with pytest.raises(ValueError):
            timer.step_time(np.zeros((0, 4), dtype=int), home[:0], ctx[:0], placement)
        with pytest.raises(ValueError):
            timer.step_time(ok_paths[:, :2], home, ctx, placement)
        with pytest.raises(ValueError):
            timer.step_time(np.full((2, 4), 8), home, ctx, placement)
        with pytest.raises(ValueError):
            timer.step_time(ok_paths, np.array([0, 99]), ctx, placement)
        with pytest.raises(ValueError):
            timer.step_time(ok_paths, home, np.zeros(2, dtype=int), placement)


class TestOnlineServing:
    @pytest.fixture
    def setup(self, small_model, small_cluster):
        serving = ServingConfig(
            arrival_rate_rps=1500.0,
            num_requests=60,
            generate_len=6,
            max_batch_requests=12,
            prompt_len=8,
            seed=3,
        )
        return small_model, small_cluster, serving

    def test_all_requests_complete_static(self, setup):
        model, cluster, serving = setup
        res = simulate_online_cluster_serving(model, cluster, serving, drift="abrupt")
        assert len(res.serving.completed) == serving.num_requests
        assert res.events == () and res.migration_stall_s == 0.0
        assert res.serving.latency.p50_s <= res.serving.latency.p99_s
        assert res.kept_timeline[0].time_s <= res.kept_timeline[-1].time_s

    def test_deterministic_given_seed(self, setup):
        model, cluster, serving = setup
        policy = ReplacementPolicy(
            check_every_steps=4, min_effective_tokens=64, cooldown_steps=8
        )
        a = simulate_online_cluster_serving(
            model, cluster, serving, drift="abrupt", policy=policy, halflife_tokens=128
        )
        b = simulate_online_cluster_serving(
            model, cluster, serving, drift="abrupt", policy=policy, halflife_tokens=128
        )
        assert a.serving.latency == b.serving.latency
        assert a.events == b.events
        assert np.array_equal(a.final_placement.gpu_of, b.final_placement.gpu_of)

    def test_online_recovers_kept_mass_after_abrupt_drift(self, setup):
        model, cluster, serving = setup
        serving = dataclasses.replace(serving, num_requests=160, generate_len=10)
        policy = ReplacementPolicy(
            check_every_steps=4,
            kept_mass_drop=0.1,
            min_effective_tokens=64,
            cooldown_steps=8,
            solver_passes=6,
        )
        static = simulate_online_cluster_serving(model, cluster, serving, drift="abrupt")
        online = simulate_online_cluster_serving(
            model, cluster, serving, drift="abrupt", policy=policy, halflife_tokens=128
        )
        assert online.num_replacements >= 1
        assert online.migration_stall_s == pytest.approx(
            sum(e.stall_s for e in online.events)
        )
        def tail(r):
            return np.mean([s.true_kept for s in r.kept_timeline[-5:]])

        assert tail(online) > tail(static) + 0.05

    def test_migration_stall_charged_to_timeline(self, setup):
        """With replacements forced on stationary-free drift, the online arm's
        busy time stays step work only while makespan absorbs the stalls."""
        model, cluster, serving = setup
        policy = ReplacementPolicy(
            check_every_steps=4, min_effective_tokens=32, cooldown_steps=4
        )
        online = simulate_online_cluster_serving(
            model, cluster, serving, drift="abrupt", policy=policy, halflife_tokens=64
        )
        if online.events:
            assert online.serving.makespan_s >= online.serving.busy_s
            assert online.serving.utilization < 1.0 or online.migration_stall_s == 0

    def test_empty_requests(self, small_model, small_cluster):
        drift = make_drift_scenario(
            "none", small_model.num_experts, small_model.num_moe_layers, horizon_s=1.0
        )
        placement = vanilla_placement(
            small_model.num_moe_layers, small_model.num_experts, small_cluster.num_gpus
        )
        res = simulate_online_serving(
            [], small_model, small_cluster, drift, placement
        )
        assert res.serving.completed == () and res.kept_timeline == ()

    def test_drift_shape_mismatch_rejected(self, small_model, small_cluster):
        drift = make_drift_scenario("none", 16, 4, horizon_s=1.0)
        placement = vanilla_placement(
            small_model.num_moe_layers, small_model.num_experts, small_cluster.num_gpus
        )
        with pytest.raises(ValueError):
            simulate_online_serving(
                poisson_arrivals(ServingConfig(num_requests=4)),
                small_model,
                small_cluster,
                drift,
                placement,
            )

    def test_static_no_drift_matches_nothing_lost(self, setup):
        """Without drift the kept-mass timeline is flat (placement stays
        matched to traffic) — the control arm of the whole subsystem."""
        model, cluster, serving = setup
        res = simulate_online_cluster_serving(model, cluster, serving, drift="none")
        kepts = [s.true_kept for s in res.kept_timeline]
        assert max(kepts) - min(kepts) < 1e-9
