"""Unit tests for repro.core.affinity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.affinity import (
    affinity_concentration,
    affinity_matrix,
    most_affiliated,
    multi_hop_affinity,
    scaled_affinity,
    set_affinity,
    staged_set_affinity,
)
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel


class TestAffinityMatrix:
    def test_row_stochastic(self, affinity_trace):
        m = affinity_matrix(affinity_trace, 0)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_deterministic_chain(self):
        """Identity routing -> identity affinity matrix."""
        paths = np.tile(np.arange(4)[:, None], (1, 3))
        trace = RoutingTrace(paths, num_experts=4)
        assert np.allclose(affinity_matrix(trace, 0), np.eye(4))

    def test_memoryless_rows_near_uniform(self, uniform_trace):
        m = affinity_matrix(uniform_trace, 0)
        e = uniform_trace.num_experts
        assert np.abs(m - 1.0 / e).max() < 0.12  # sampling noise bound


class TestMultiHop:
    def test_matches_direct_estimate(self, affinity_trace):
        m = multi_hop_affinity(affinity_trace, 0, 2)
        direct = affinity_trace.conditional_matrix(0, 2)
        assert np.array_equal(m, direct)

    def test_rejects_non_forward(self, affinity_trace):
        with pytest.raises(ValueError):
            multi_hop_affinity(affinity_trace, 2, 2)

    def test_hops_diffuse(self):
        """With imperfect affinity, longer hops are less concentrated."""
        model = MarkovRoutingModel.with_affinity(
            8, 6, 0.8, successors=1, rng=np.random.default_rng(1)
        )
        trace = model.sample(20000, np.random.default_rng(2))
        one = multi_hop_affinity(trace, 0, 1).max(axis=1).mean()
        four = multi_hop_affinity(trace, 0, 4).max(axis=1).mean()
        assert one > four


class TestMostAffiliated:
    def test_deterministic_chain(self):
        paths = np.column_stack([np.arange(4), (np.arange(4) + 1) % 4])
        trace = RoutingTrace(paths, num_experts=4)
        assert most_affiliated(trace, 0).tolist() == [1, 2, 3, 0]


class TestSetAffinity:
    def test_full_sets_give_one(self, affinity_trace):
        all_experts = np.arange(affinity_trace.num_experts)
        assert set_affinity(affinity_trace, 0, all_experts, all_experts) == pytest.approx(1.0)

    def test_empty_dst_gives_zero(self, affinity_trace):
        src = np.arange(affinity_trace.num_experts)
        assert set_affinity(affinity_trace, 0, src, np.array([], dtype=int)) == 0.0

    def test_unseen_src_gives_zero(self):
        trace = RoutingTrace(np.zeros((10, 2), dtype=int), num_experts=4)
        assert set_affinity(trace, 0, np.array([3]), np.array([0])) == 0.0

    def test_partition_sums_to_one(self, affinity_trace):
        """Disjoint destination groups partition the probability."""
        e = affinity_trace.num_experts
        src = np.array([0, 1])
        half_a, half_b = np.arange(e // 2), np.arange(e // 2, e)
        total = set_affinity(affinity_trace, 0, src, half_a) + set_affinity(
            affinity_trace, 0, src, half_b
        )
        assert total == pytest.approx(1.0)


class TestStagedSetAffinity:
    def test_decomposition(self, affinity_trace):
        gpu = np.array([0, 1])
        node_rest = np.array([2, 3])
        staged = staged_set_affinity(affinity_trace, 0, gpu, node_rest)
        node_all = set_affinity(affinity_trace, 0, gpu, np.array([0, 1, 2, 3]))
        assert staged == pytest.approx(node_all)


class TestConcentrationAndScaled:
    def test_concentration_bounds(self, affinity_trace):
        c = affinity_concentration(affinity_trace, 0, top=2)
        assert 0.0 <= c <= 1.0

    def test_strong_beats_weak(self):
        strong = MarkovRoutingModel.with_affinity(8, 4, 0.9, rng=np.random.default_rng(1))
        weak = MarkovRoutingModel.with_affinity(8, 4, 0.1, rng=np.random.default_rng(1))
        rng = np.random.default_rng(2)
        s = scaled_affinity(strong.sample(5000, rng))
        w = scaled_affinity(weak.sample(5000, rng))
        assert s > w + 0.3

    def test_memoryless_near_zero(self, uniform_trace):
        assert scaled_affinity(uniform_trace) < 0.1

    def test_deterministic_is_one(self):
        paths = np.tile(np.arange(8)[:, None], (10, 3))
        trace = RoutingTrace(paths, num_experts=8)
        assert scaled_affinity(trace, top=1) == pytest.approx(1.0)

    def test_needs_two_layers(self):
        trace = RoutingTrace(np.zeros((5, 1), dtype=int), num_experts=4)
        with pytest.raises(ValueError):
            scaled_affinity(trace)

    def test_empty_trace_concentration(self):
        trace = RoutingTrace(np.zeros((0, 3), dtype=int), num_experts=4)
        assert affinity_concentration(trace, 0) == 0.0
