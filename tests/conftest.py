"""Shared fixtures: small, fast model/cluster/trace instances.

Everything here is deterministic (fixed seeds) and sized for sub-second
tests; the benchmarks use paper-scale configurations instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig, InferenceConfig, ModelConfig
from repro.trace.datasets import make_corpus
from repro.trace.markov import MarkovRoutingModel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_model() -> ModelConfig:
    """4 MoE layers x 8 experts, tiny hidden size."""
    return ModelConfig(
        name="test-small",
        num_layers=4,
        num_experts=8,
        d_model=32,
        vocab_size=128,
        num_heads=4,
    )


@pytest.fixture
def small_cluster() -> ClusterConfig:
    """2 nodes x 2 GPUs."""
    return ClusterConfig(num_nodes=2, gpus_per_node=2)


@pytest.fixture
def small_infer() -> InferenceConfig:
    return InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=4)


@pytest.fixture
def affinity_routing(small_model) -> MarkovRoutingModel:
    """Strong-affinity Markov router matching the small model's shape."""
    return MarkovRoutingModel.with_affinity(
        small_model.num_experts,
        small_model.num_moe_layers,
        affinity=0.9,
        rng=np.random.default_rng(7),
    )


@pytest.fixture
def affinity_trace(affinity_routing, rng):
    return affinity_routing.sample(2000, rng)


@pytest.fixture
def uniform_trace(small_model, rng):
    """Memoryless routing — the no-affinity null case."""
    routing = MarkovRoutingModel.with_affinity(
        small_model.num_experts, small_model.num_moe_layers, affinity=0.0
    )
    return routing.sample(2000, rng)


@pytest.fixture
def pile_corpus():
    return make_corpus("pile", vocab_size=128, num_topics=8)
