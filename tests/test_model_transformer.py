"""Unit tests for repro.model.transformer and generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.model.generation import generate
from repro.model.transformer import MoETransformer


@pytest.fixture
def model(small_model) -> MoETransformer:
    return MoETransformer(small_model, np.random.default_rng(0))


class TestTransformer:
    def test_forward_shapes(self, model, small_model):
        tokens = np.random.default_rng(1).integers(0, 128, size=(2, 6))
        states = model.init_state(2)
        logits, routings = model.forward(tokens, states)
        assert logits.shape == (2, 6, small_model.vocab_size)
        assert len(routings) == small_model.num_moe_layers
        assert routings[0].num_tokens == 12

    def test_moe_layer_count(self, model, small_model):
        assert len(model.moe_layers) == small_model.num_moe_layers

    def test_dense_blocks_when_moe_every_2(self):
        cfg = ModelConfig(
            "m", num_layers=4, num_experts=4, d_model=32, vocab_size=64, moe_every=2
        )
        model = MoETransformer(cfg, np.random.default_rng(0))
        tokens = np.zeros((1, 3), dtype=int)
        _, routings = model.forward(tokens, model.init_state(1))
        assert len(routings) == 2

    def test_kv_cache_grows(self, model):
        states = model.init_state(1)
        model.forward(np.zeros((1, 4), dtype=int), states)
        assert states[0].cache.seq_len == 4
        model.forward(np.zeros((1, 1), dtype=int), states)
        assert states[0].cache.seq_len == 5

    def test_incremental_matches_full(self, model):
        """Prefill-then-decode logits must equal one full forward pass."""
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, 128, size=(1, 5))
        full_logits, _ = model.forward(tokens, model.init_state(1))

        states = model.init_state(1)
        l1, _ = model.forward(tokens[:, :3], states)
        l2, _ = model.forward(tokens[:, 3:], states)
        assert np.allclose(full_logits[:, :3], l1, atol=1e-8)
        assert np.allclose(full_logits[:, 3:], l2, atol=1e-8)

    def test_rejects_bad_tokens(self, model):
        with pytest.raises(ValueError):
            model.forward(np.array([[999]]), model.init_state(1))
        with pytest.raises(ValueError):
            model.forward(np.zeros(3, dtype=int), model.init_state(1))

    def test_rejects_wrong_state_count(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 2), dtype=int), [])

    def test_route_hidden_shape(self, model, small_model):
        h = np.random.default_rng(3).normal(size=(7, small_model.d_model))
        paths = model.route_hidden(h)
        assert paths.shape == (7, small_model.num_moe_layers)
        assert paths.max() < small_model.num_experts

    def test_param_count_positive(self, model):
        assert model.param_count() > 0


class TestGeneration:
    def test_token_shapes(self, model):
        prompts = np.random.default_rng(4).integers(0, 128, size=(3, 5))
        result = generate(model, prompts, steps=4)
        assert result.tokens.shape == (3, 9)
        assert (result.tokens[:, :5] == prompts).all()

    def test_trace_rows(self, model, small_model):
        prompts = np.random.default_rng(5).integers(0, 128, size=(2, 4))
        result = generate(model, prompts, steps=3)
        # prefill: 2*4 rows; decode: 3 steps x 2 requests
        assert result.expert_paths.shape == (8 + 6, small_model.num_moe_layers)
        assert result.decode_paths.shape == (6, small_model.num_moe_layers)

    def test_request_alignment(self, model):
        prompts = np.zeros((2, 3), dtype=int)
        result = generate(model, prompts, steps=2)
        prefill = result.position_request[result.position_is_prefill]
        assert prefill.tolist() == [0, 0, 0, 1, 1, 1]
        decode = result.position_request[~result.position_is_prefill]
        assert decode.tolist() == [0, 1, 0, 1]

    def test_greedy_deterministic(self, model):
        prompts = np.random.default_rng(6).integers(0, 128, size=(1, 4))
        a = generate(model, prompts, steps=3)
        b = generate(model, prompts, steps=3)
        assert np.array_equal(a.tokens, b.tokens)

    def test_sampling_seeded(self, model):
        prompts = np.random.default_rng(7).integers(0, 128, size=(1, 4))
        a = generate(model, prompts, steps=3, rng=np.random.default_rng(1))
        b = generate(model, prompts, steps=3, rng=np.random.default_rng(1))
        assert np.array_equal(a.tokens, b.tokens)

    def test_zero_steps(self, model):
        prompts = np.zeros((2, 3), dtype=int)
        result = generate(model, prompts, steps=0)
        assert result.tokens.shape == (2, 3)
        assert result.decode_paths.shape[0] == 0

    def test_rejects_bad_args(self, model):
        with pytest.raises(ValueError):
            generate(model, np.zeros(3, dtype=int), steps=1)
        with pytest.raises(ValueError):
            generate(model, np.zeros((1, 3), dtype=int), steps=-1)
