"""Equivalence suite: the vectorized engine vs the loop reference oracle.

The batched executor must reproduce the step-by-step oracle's
:class:`~repro.engine.metrics.RunResult` *bit for bit* — not approximately
— on identical inputs: every breakdown field, every ledger accumulator,
and both locality fractions.  The cases sweep all three execution modes,
top-1 and top-2 gating, round-robin and affinity placements, single-GPU
degenerate clusters and the chunked traffic-stack path.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    ExecutionMode,
    GatingKind,
    InferenceConfig,
    ModelConfig,
)
from repro.core.placement.staged import staged_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.engine import executor as executor_mod
from repro.engine.executor import simulate_inference
from repro.engine.reference import simulate_inference_reference
from repro.engine.workload import make_decode_workload

MODES = list(ExecutionMode)


def assert_bit_identical(a, b):
    """Every value in two RunResults matches exactly (no tolerance)."""
    assert a.mode == b.mode
    for f in ("attention_s", "gating_s", "expert_ffn_s", "alltoall_s", "allgather_s"):
        va, vb = getattr(a.breakdown, f), getattr(b.breakdown, f)
        assert va == vb, f"breakdown.{f}: {va!r} != {vb!r}"
    assert a.generated_tokens == b.generated_tokens
    assert a.iterations == b.iterations
    assert a.gpu_stay_fraction == b.gpu_stay_fraction
    assert a.node_stay_fraction == b.node_stay_fraction
    assert dict(a.ledger.time_by_op) == dict(b.ledger.time_by_op)
    assert dict(a.ledger.count_by_op) == dict(b.ledger.count_by_op)
    tiers_a = {op: dict(t) for op, t in a.ledger.bytes_by_op_tier.items()}
    tiers_b = {op: dict(t) for op, t in b.ledger.bytes_by_op_tier.items()}
    assert tiers_a == tiers_b


def both(model, cluster, infer, placement, workload):
    vec = simulate_inference(model, cluster, infer, placement, workload)
    ref = simulate_inference_reference(model, cluster, infer, placement, workload)
    return vec, ref


@pytest.fixture(params=[GatingKind.TOP1, GatingKind.TOP2], ids=["top1", "top2"])
def gated_model(request, small_model):
    return dataclasses.replace(small_model, gating=request.param)


@pytest.fixture
def gated_workload(gated_model, small_cluster, small_infer):
    return make_decode_workload(gated_model, small_cluster, small_infer)


class TestEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_vanilla_placement(
        self, mode, gated_model, small_cluster, small_infer, gated_workload
    ):
        placement = vanilla_placement(
            gated_model.num_moe_layers, gated_model.num_experts, small_cluster.num_gpus
        )
        cfg = dataclasses.replace(small_infer, mode=mode)
        vec, ref = both(gated_model, small_cluster, cfg, placement, gated_workload)
        assert_bit_identical(vec, ref)

    @pytest.mark.parametrize("mode", MODES)
    def test_affinity_placement(
        self, mode, gated_model, small_cluster, small_infer, gated_workload
    ):
        placement = staged_placement(gated_workload.flat_trace(), small_cluster)
        cfg = dataclasses.replace(small_infer, mode=mode)
        vec, ref = both(gated_model, small_cluster, cfg, placement, gated_workload)
        assert_bit_identical(vec, ref)

    @pytest.mark.parametrize("mode", MODES)
    def test_single_gpu(self, mode, gated_model):
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=1)
        infer = InferenceConfig(
            requests_per_gpu=3, prompt_len=4, generate_len=3, mode=mode
        )
        placement = vanilla_placement(
            gated_model.num_moe_layers, gated_model.num_experts, 1
        )
        workload = make_decode_workload(gated_model, cluster, infer)
        vec, ref = both(gated_model, cluster, infer, placement, workload)
        assert_bit_identical(vec, ref)

    @pytest.mark.parametrize("mode", MODES)
    def test_multi_node_larger(self, mode):
        """A 2x4 cluster with an uneven model shape (16 experts, 6 layers)."""
        model = ModelConfig(
            name="eq-mid",
            num_layers=6,
            num_experts=16,
            d_model=64,
            vocab_size=256,
            num_heads=4,
            gating=GatingKind.TOP2,
        )
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=4)
        infer = InferenceConfig(
            requests_per_gpu=5, prompt_len=16, generate_len=6, mode=mode
        )
        placement = staged_placement(
            make_decode_workload(model, cluster, infer).flat_trace(), cluster
        )
        workload = make_decode_workload(model, cluster, infer)
        vec, ref = both(model, cluster, infer, placement, workload)
        assert_bit_identical(vec, ref)

    @pytest.mark.parametrize("mode", MODES)
    def test_chunked_traffic_stacks(
        self, mode, monkeypatch, gated_model, small_cluster, small_infer, gated_workload
    ):
        """Force tiny stack blocks so chunk boundaries cross iterations."""
        monkeypatch.setattr(executor_mod, "_MAX_STACK_ELEMENTS", 1)
        placement = vanilla_placement(
            gated_model.num_moe_layers, gated_model.num_experts, small_cluster.num_gpus
        )
        cfg = dataclasses.replace(small_infer, mode=mode)
        vec, ref = both(gated_model, small_cluster, cfg, placement, gated_workload)
        assert_bit_identical(vec, ref)

    def test_custom_cost_model(self, small_model, small_cluster, small_infer):
        from repro.engine.costs import CostModel

        cost = CostModel(small_model, gpu_flops=5e12, attention_efficiency=0.5)
        placement = vanilla_placement(
            small_model.num_moe_layers, small_model.num_experts, small_cluster.num_gpus
        )
        workload = make_decode_workload(small_model, small_cluster, small_infer)
        vec = simulate_inference(
            small_model, small_cluster, small_infer, placement, workload, cost
        )
        ref = simulate_inference_reference(
            small_model, small_cluster, small_infer, placement, workload, cost
        )
        assert_bit_identical(vec, ref)


class TestCompareModesEngines:
    def test_engine_switch_identical(self, small_model, small_cluster, small_infer):
        from repro.engine.comparison import compare_modes

        fast = compare_modes(
            small_model, small_cluster, small_infer, seed=11, engine="vectorized"
        )
        slow = compare_modes(
            small_model, small_cluster, small_infer, seed=11, engine="reference"
        )
        for label in fast:
            assert_bit_identical(fast[label].result, slow[label].result)
            assert fast[label].speedup == slow[label].speedup

    def test_unknown_engine_rejected(self, small_model, small_cluster, small_infer):
        from repro.engine.comparison import compare_modes

        with pytest.raises(ValueError, match="engine"):
            compare_modes(small_model, small_cluster, small_infer, engine="warp")


class TestValidation:
    """Full input validation (negative ranks, out-of-range expert ids)."""

    @pytest.fixture
    def setup(self, small_model, small_cluster, small_infer):
        placement = vanilla_placement(
            small_model.num_moe_layers, small_model.num_experts, small_cluster.num_gpus
        )
        workload = make_decode_workload(small_model, small_cluster, small_infer)
        return small_model, small_cluster, small_infer, placement, workload

    @pytest.mark.parametrize(
        "engine", [simulate_inference, simulate_inference_reference]
    )
    def test_negative_home_rank_rejected(self, engine, setup):
        model, cluster, infer, placement, workload = setup
        workload.home_gpu[0] = -1  # in-place mutation bypasses __post_init__
        with pytest.raises(ValueError, match=">= 0"):
            engine(model, cluster, infer, placement, workload)

    @pytest.mark.parametrize(
        "engine", [simulate_inference, simulate_inference_reference]
    )
    def test_out_of_range_expert_id_rejected(self, engine, setup):
        model, cluster, infer, placement, workload = setup
        workload.paths[0, 0, 0] = model.num_experts + 3
        with pytest.raises(ValueError, match="expert id"):
            engine(model, cluster, infer, placement, workload)

    @pytest.mark.parametrize(
        "engine", [simulate_inference, simulate_inference_reference]
    )
    def test_negative_expert_id_rejected(self, engine, setup):
        model, cluster, infer, placement, workload = setup
        workload.paths[0, 0, 0] = -2
        with pytest.raises(ValueError, match="expert id"):
            engine(model, cluster, infer, placement, workload)

    def test_secondary_out_of_range_rejected(self, small_cluster, small_infer, small_model):
        model = dataclasses.replace(small_model, gating=GatingKind.TOP2)
        placement = vanilla_placement(
            model.num_moe_layers, model.num_experts, small_cluster.num_gpus
        )
        workload = make_decode_workload(model, small_cluster, small_infer)
        assert workload.secondary_paths is not None
        workload.secondary_paths[0, 0, 0] = model.num_experts
        with pytest.raises(ValueError, match="secondary_paths"):
            simulate_inference(model, small_cluster, small_infer, placement, workload)

    def test_workload_negative_home_rejected_at_construction(self):
        from repro.engine.workload import DecodeWorkload

        paths = np.zeros((2, 3, 2), dtype=np.int64)
        home = np.array([0, -1, 1])
        with pytest.raises(ValueError, match=">= 0"):
            DecodeWorkload(paths, home, num_experts=4, prompt_len=8)
