"""Unit tests for repro.trace.events (RoutingTrace)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.events import RoutingTrace


@pytest.fixture
def trace() -> RoutingTrace:
    paths = np.array(
        [
            [0, 1, 2],
            [0, 1, 2],
            [1, 1, 0],
            [2, 0, 0],
        ]
    )
    return RoutingTrace(paths, num_experts=3, source="unit")


class TestConstruction:
    def test_shape(self, trace):
        assert trace.num_tokens == 4
        assert trace.num_layers == 3
        assert len(trace) == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RoutingTrace(np.array([[0, 3]]), num_experts=3)
        with pytest.raises(ValueError):
            RoutingTrace(np.array([[-1, 0]]), num_experts=3)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            RoutingTrace(np.zeros(5, dtype=int), num_experts=3)

    def test_rejects_bad_expert_count(self):
        with pytest.raises(ValueError):
            RoutingTrace(np.zeros((2, 2), dtype=int), num_experts=0)


class TestStats:
    def test_layer_histogram(self, trace):
        assert trace.layer_histogram(0).tolist() == [2, 1, 1]

    def test_layer_distribution_sums_to_one(self, trace):
        assert trace.layer_distribution(1).sum() == pytest.approx(1.0)

    def test_transition_counts(self, trace):
        counts = trace.transition_counts(0)
        assert counts[0, 1] == 2  # two tokens 0 -> 1
        assert counts[1, 1] == 1
        assert counts[2, 0] == 1
        assert counts.sum() == 4

    def test_transition_counts_multi_hop(self, trace):
        counts = trace.transition_counts(0, 2)
        assert counts[0, 2] == 2
        assert counts.sum() == 4

    def test_conditional_matrix_rows_stochastic(self, trace):
        m = trace.conditional_matrix(0)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_conditional_matrix_unseen_rows_uniform(self):
        paths = np.array([[0, 1]])
        trace = RoutingTrace(paths, num_experts=4)
        m = trace.conditional_matrix(0)
        # experts 1..3 never observed at layer 0 -> uniform rows
        assert np.allclose(m[1], 0.25)

    def test_all_conditional_matrices_shape(self, trace):
        stack = trace.all_conditional_matrices()
        assert stack.shape == (2, 3, 3)

    def test_layer_out_of_range(self, trace):
        with pytest.raises(IndexError):
            trace.layer_histogram(3)
        with pytest.raises(IndexError):
            trace.transition_counts(2)


class TestComposition:
    def test_subsample_size(self, trace, rng):
        sub = trace.subsample(2, rng)
        assert sub.num_tokens == 2
        assert sub.num_experts == trace.num_experts

    def test_subsample_larger_is_identity(self, trace, rng):
        assert trace.subsample(100, rng) is trace

    def test_subsample_negative(self, trace):
        with pytest.raises(ValueError):
            trace.subsample(-1)

    def test_concat(self, trace):
        both = trace.concat(trace)
        assert both.num_tokens == 8

    def test_concat_mismatch(self, trace):
        other = RoutingTrace(np.zeros((2, 3), dtype=int), num_experts=5)
        with pytest.raises(ValueError):
            trace.concat(other)
        other2 = RoutingTrace(np.zeros((2, 2), dtype=int), num_experts=3)
        with pytest.raises(ValueError):
            trace.concat(other2)

    def test_split_partitions(self, trace, rng):
        a, b = trace.split(0.5, rng)
        assert a.num_tokens + b.num_tokens == trace.num_tokens

    def test_split_bad_fraction(self, trace):
        with pytest.raises(ValueError):
            trace.split(1.0)


class TestPersistence:
    def test_save_load_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RoutingTrace.load(path)
        assert np.array_equal(loaded.paths, trace.paths)
        assert loaded.num_experts == trace.num_experts
        assert loaded.source == "unit"

    def test_bytes_roundtrip(self, trace):
        blob = trace.to_bytes()
        loaded = RoutingTrace.from_bytes(blob)
        assert np.array_equal(loaded.paths, trace.paths)
        assert loaded.source == trace.source
