"""Unit tests for repro.core.context (ContextStore)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.context import CoherenceError, ContextStore


@pytest.fixture
def store() -> ContextStore:
    s = ContextStore(num_gpus=4, requests_per_gpu=2)
    s.ingest_prompts(10)
    return s


class TestLifecycle:
    def test_initial_state_incoherent(self, store):
        assert not store.is_coherent()
        # home GPUs hold their own prompts
        assert store.can_attend(0, 0)
        assert not store.can_attend(1, 0)

    def test_allgather_makes_coherent(self, store):
        contributed = store.allgather_contexts()
        assert store.is_coherent()
        # each GPU contributed its 2 requests x 10 prompt tokens
        assert contributed.tolist() == [20, 20, 20, 20]

    def test_heterogeneous_requests(self):
        s = ContextStore(num_gpus=2, requests_per_gpu=np.array([1, 3]))
        s.ingest_prompts(5)
        assert s.num_requests == 4
        contributed = s.allgather_contexts()
        assert contributed.tolist() == [5, 15]

    def test_append_breaks_coherence(self, store):
        store.allgather_contexts()
        store.append_generated(1)
        assert not store.is_coherent()
        assert store.can_attend(0, 0)  # home still complete

    def test_step_allgather_restores(self, store):
        store.allgather_contexts()
        store.append_generated(1)
        contributed = store.allgather_step()
        assert store.is_coherent()
        # one new token per request, 2 requests per GPU
        assert contributed.tolist() == [2, 2, 2, 2]

    def test_multiple_iterations(self, store):
        store.allgather_contexts()
        for _ in range(3):
            store.append_generated(1)
            store.allgather_step()
        assert store.is_coherent()
        assert (store.true_len == 13).all()

    def test_vanilla_never_coherent(self, store):
        """Without gathers, only home GPUs can attend — the constraint that
        forces the combine Alltoall."""
        store.append_generated(1)
        for r in range(store.num_requests):
            home = store.home_gpu[r]
            for g in range(store.num_gpus):
                assert store.can_attend(g, r) == (g == home)


class TestInvariants:
    def test_require_attend_raises(self, store):
        with pytest.raises(CoherenceError):
            store.require_attend(1, 0)

    def test_require_attend_passes_after_gather(self, store):
        store.allgather_contexts()
        store.require_attend(1, 0)  # no raise

    def test_rejects_bad_prompts(self, store):
        with pytest.raises(ValueError):
            store.ingest_prompts(0)

    def test_rejects_negative_generation(self, store):
        with pytest.raises(ValueError):
            store.append_generated(-1)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ContextStore(0, 1)
        with pytest.raises(ValueError):
            ContextStore(2, -1)
