"""Unit tests for repro.core.exflow (the facade)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExecutionMode, InferenceConfig
from repro.core.exflow import ExFlowOptimizer
from repro.engine.workload import make_decode_workload


@pytest.fixture
def optimizer(small_model, small_cluster) -> ExFlowOptimizer:
    return ExFlowOptimizer(small_model, small_cluster)


class TestFit:
    def test_plan_fields(self, optimizer, affinity_trace):
        plan = optimizer.fit(affinity_trace)
        assert plan.profile_tokens == affinity_trace.num_tokens
        assert 0.0 <= plan.profile_affinity <= 1.0
        assert plan.strategy == "staged"
        assert plan.expected_locality.gpu_stay_fraction > 0.2

    def test_fit_rejects_mismatched_trace(self, optimizer, affinity_trace):
        from repro.trace.events import RoutingTrace

        bad_experts = RoutingTrace(affinity_trace.paths % 4, num_experts=4)
        with pytest.raises(ValueError):
            optimizer.fit(bad_experts)
        bad_layers = RoutingTrace(affinity_trace.paths[:, :2], affinity_trace.num_experts)
        with pytest.raises(ValueError):
            optimizer.fit(bad_layers)

    def test_alternative_strategy(self, small_model, small_cluster, affinity_trace):
        opt = ExFlowOptimizer(small_model, small_cluster, strategy="greedy")
        plan = opt.fit(affinity_trace)
        assert plan.placement.strategy == "greedy"

    def test_indivisible_deployment_rejected(self, small_model):
        from repro.config import ClusterConfig

        with pytest.raises(ValueError):
            ExFlowOptimizer(small_model, ClusterConfig(num_nodes=3, gpus_per_node=1))


class TestEvaluate:
    def test_out_of_sample_locality(self, optimizer, affinity_routing, rng):
        train = affinity_routing.sample(2000, rng)
        fresh = affinity_routing.sample(2000, np.random.default_rng(99))
        plan = optimizer.fit(train)
        stats = optimizer.evaluate_locality(plan, fresh)
        # affinity generalises: out-of-sample locality close to in-sample
        assert stats.gpu_stay_fraction > plan.expected_locality.gpu_stay_fraction - 0.1


class TestRun:
    def test_exflow_beats_vanilla(self, optimizer, small_model, small_cluster, affinity_trace):
        infer = InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=4)
        workload = make_decode_workload(small_model, small_cluster, infer)
        plan = optimizer.fit(affinity_trace)
        vanilla = optimizer.run(plan, workload, infer, ExecutionMode.VANILLA)
        exflow = optimizer.run(plan, workload, infer, ExecutionMode.EXFLOW)
        assert exflow.total_time_s < vanilla.total_time_s
        assert exflow.generated_tokens == vanilla.generated_tokens

    def test_baseline_placement_is_vanilla(self, optimizer):
        p = optimizer.baseline_placement()
        assert p.strategy == "vanilla"
        assert (p.gpu_of == p.gpu_of[0]).all()
