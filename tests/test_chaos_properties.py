"""Property test: chaos never double-counts or drops a request.

Under any crash/preemption schedule and retry budget, every submitted
request must end in exactly one terminal ledger — completed, shed, or
lost — in *both* fleet engines, and the two engines must agree exactly.
Hypothesis drives the fault schedule (times, targets, grace periods,
retry budget, brownouts, recovery on/off); the conservation law and the
engine-equivalence contract are the invariants.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    BrownoutSpec,
    ChaosSpec,
    CrashSpec,
    PreemptSpec,
    RetryPolicy,
)
from repro.config import ClusterConfig, FleetConfig, ModelConfig, ServingConfig
from repro.fleet.simulate import _simulate_fleet_cluster_serving

MODEL = ModelConfig(
    name="chaos-prop-test", num_layers=4, num_experts=8, d_model=64, num_heads=4
)
CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=2)
# hot enough that queues are non-empty when faults land, small enough for
# ~a dozen Hypothesis examples to stay CI-sized
SERVING = ServingConfig(
    arrival="bursty",
    arrival_rate_rps=12000.0,
    num_requests=80,
    generate_len=6,
    max_batch_requests=4,
    prompt_len=8,
    seed=0,
)
NUM_REPLICAS = 2
# the run's simulated horizon is ~0.01-0.05 s; draw fault times across and
# slightly past it so no-op schedules (fault after the run ends, or on an
# already-dead replica) are generated too
TIMES = st.floats(min_value=0.0, max_value=0.06, allow_nan=False)

crashes = st.lists(
    st.builds(
        CrashSpec, time_s=TIMES, replica=st.integers(0, NUM_REPLICAS - 1)
    ),
    max_size=3,
)
preemptions = st.lists(
    st.builds(
        PreemptSpec,
        time_s=TIMES,
        replica=st.integers(0, NUM_REPLICAS - 1),
        grace_s=st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
    ),
    max_size=2,
)
brownouts = st.lists(
    st.builds(
        BrownoutSpec,
        start_s=TIMES,
        duration_s=st.floats(
            min_value=0.001, max_value=0.02, allow_nan=False
        ),
        replica=st.integers(0, NUM_REPLICAS - 1),
        factor=st.floats(min_value=0.5, max_value=6.0, allow_nan=False),
    ),
    max_size=2,
)
retries = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 3),
    backoff_base_s=st.floats(
        min_value=0.0, max_value=0.005, allow_nan=False
    ),
    backoff_factor=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    attempt_timeout_s=st.one_of(
        st.none(),
        st.floats(min_value=0.001, max_value=0.05, allow_nan=False),
    ),
)
chaos_specs = st.builds(
    ChaosSpec,
    crashes=st.builds(tuple, crashes),
    preemptions=st.builds(tuple, preemptions),
    brownouts=st.builds(tuple, brownouts),
    retry=retries,
    recover=st.booleans(),
)


def _terminal_ids(result):
    return (
        [c.request.req_id for c in result.completed]
        + [s.request.req_id for s in result.shed]
        + [lo.request.req_id for lo in result.lost]
    )


@settings(max_examples=12, deadline=None)
@given(chaos=chaos_specs, migrate=st.booleans())
def test_requests_conserved_and_engines_agree(chaos: ChaosSpec, migrate: bool):
    fleet = FleetConfig(
        num_replicas=NUM_REPLICAS,
        router="p2c",
        num_regimes=2,
        slo_ms=10000.0,
        batch_slo_ms=20000.0,
        max_queue_per_replica=64,
        migrate_on_drain=migrate,
        chaos=chaos,
    )
    event = _simulate_fleet_cluster_serving(
        MODEL, CLUSTER, SERVING, dataclasses.replace(fleet, engine="event")
    )
    tick = _simulate_fleet_cluster_serving(
        MODEL, CLUSTER, SERVING, dataclasses.replace(fleet, engine="tick")
    )
    for result in (event, tick):
        ids = _terminal_ids(result)
        # one terminal outcome per submitted request: nothing lost twice,
        # nothing both completed and lost, nothing silently dropped
        assert len(ids) == SERVING.num_requests
        assert len(set(ids)) == SERVING.num_requests
        # a request that exhausted its retries must have attempted at most
        # the policy's budget
        for lo in result.lost:
            assert 1 <= lo.attempts <= chaos.retry.max_attempts
    assert tick == event
