"""Unit tests for the repro CLI."""

from __future__ import annotations

import json
from typing import ClassVar

import numpy as np
import pytest

from repro.cli import main
from repro.core.placement.base import Placement
from repro.scenarios import get_scenario, list_scenarios
from repro.trace.events import RoutingTrace


class TestRunCommand:
    def test_runs_registered_preset(self, capsys):
        assert main(["run", "fig10-end-to-end-smoke"]) == 0
        out = capsys.readouterr().out
        assert "fig10-end-to-end-smoke" in out
        assert "exflow" in out
        assert "summary:" in out
        assert "GPU-h" in out

    def test_serving_preset_prints_latency(self, capsys):
        assert main(["run", "serve-poisson-smoke"]) == 0
        out = capsys.readouterr().out
        assert "p95 ms" in out
        assert "$" in out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["run", "serve-bursty-smoke", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scenario"] == "serve-bursty-smoke"
        assert report["kind"] == "serving"
        assert report["completed"] > 0

    def test_runs_scenario_from_json_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        get_scenario("serve-poisson-smoke").save(path)
        assert main(["run", "--scenario", str(path)]) == 0
        assert "serve-poisson-smoke" in capsys.readouterr().out

    def test_positional_path_also_loads_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        get_scenario("serve-poisson-smoke").save(path)
        assert main(["run", str(path)]) == 0
        assert "serve-poisson-smoke" in capsys.readouterr().out

    def test_out_writes_report_and_spec(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        spec_path = tmp_path / "spec.json"
        code = main(
            [
                "run",
                "serve-poisson-smoke",
                "--out",
                str(report_path),
                "--out-spec",
                str(spec_path),
            ]
        )
        assert code == 0
        assert json.loads(report_path.read_text())["kind"] == "serving"
        from repro.scenarios import Scenario

        assert Scenario.load(spec_path) == get_scenario("serve-poisson-smoke")

    def test_unknown_preset_fails_cleanly(self, capsys):
        assert main(["run", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_scenario_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", "--scenario", str(tmp_path / "missing.json")]) == 2
        assert "cannot load scenario" in capsys.readouterr().err
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert main(["run", str(broken)]) == 2
        assert "cannot load scenario" in capsys.readouterr().err

    def test_unwritable_out_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "no-such-dir" / "rep.json"
        assert main(["run", "serve-poisson-smoke", "--out", str(bad)]) == 2
        assert "cannot write output" in capsys.readouterr().err

    def test_json_with_out_keeps_stdout_machine_readable(self, tmp_path, capsys):
        out_path = tmp_path / "rep.json"
        code = main(
            ["run", "serve-poisson-smoke", "--json", "--out", str(out_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        # the whole stdout stream must be one JSON document (confirmations
        # go to stderr)
        assert json.loads(captured.out)["scenario"] == "serve-poisson-smoke"
        assert "wrote report" in captured.err

    def test_name_and_file_are_mutually_exclusive(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        get_scenario("serve-poisson-smoke").save(path)
        assert main(["run", "serve-poisson-smoke", "--scenario", str(path)]) == 2
        assert main(["run"]) == 2


class TestScenariosCommand:
    def test_list_shows_every_preset(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in list_scenarios():
            assert name in out
        assert "kind" in out

    def test_default_action_is_list(self, capsys):
        assert main(["scenarios"]) == 0
        assert "registered scenarios" in capsys.readouterr().out

    def test_names_mode_is_script_friendly(self, capsys):
        assert main(["scenarios", "list", "--names", "--smoke-only"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == list(list_scenarios(smoke=True))
        assert all(name.endswith("-smoke") for name in lines)

    def test_kind_filter(self, capsys):
        assert main(["scenarios", "list", "--kind", "fleet", "--names"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and all(get_scenario(n).kind == "fleet" for n in lines)

    def test_full_only_excludes_smoke(self, capsys):
        assert main(["scenarios", "list", "--full-only", "--names"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines and not any(n.endswith("-smoke") for n in lines)

    def test_smoke_and_full_flags_conflict(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "list", "--smoke-only", "--full-only"])

    def test_json_mode_is_machine_readable(self, capsys):
        assert main(["scenarios", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [e["name"] for e in entries] == list(list_scenarios())
        for e in entries:
            s = get_scenario(e["name"])
            assert e["kind"] == s.kind
            assert e["smoke"] == s.is_smoke
            assert e["description"] == s.description
        by_name = {e["name"]: e for e in entries}
        assert by_name["fleet-bad-day"]["chaos"] is True
        assert by_name["fig10-end-to-end"]["chaos"] is False

    def test_json_respects_filters(self, capsys):
        assert main(["scenarios", "list", "--json", "--kind", "fleet", "--smoke-only"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries and all(
            e["kind"] == "fleet" and e["smoke"] for e in entries
        )

    def test_json_and_names_conflict(self, capsys):
        assert main(["scenarios", "list", "--json", "--names"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestModels:
    def test_lists_presets(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt-m-350m-e32" in out
        assert "MoE-GPT-XL-1.3B-E16" in out


class TestProfile:
    def test_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.npz"
        code = main(
            ["profile", "--model", "gpt-m-350m-e8", "--tokens", "200", "--out", str(out)]
        )
        assert code == 0
        trace = RoutingTrace.load(out)
        assert trace.num_tokens == 200
        assert trace.num_experts == 8
        assert "scaled affinity" in capsys.readouterr().out

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        main(["profile", "--tokens", "100", "--seed", "5", "--out", str(a)])
        main(["profile", "--tokens", "100", "--seed", "5", "--out", str(b)])
        assert np.array_equal(RoutingTrace.load(a).paths, RoutingTrace.load(b).paths)


class TestPlace:
    def test_solves_and_saves(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.npz"
        main(["profile", "--model", "gpt-m-350m-e32", "--tokens", "500", "--out", str(trace_path)])
        placement_path = tmp_path / "placement.npz"
        code = main(
            [
                "place",
                "--trace",
                str(trace_path),
                "--nodes",
                "2",
                "--gpus-per-node",
                "4",
                "--out",
                str(placement_path),
            ]
        )
        assert code == 0
        placement = Placement.load(placement_path)
        assert placement.num_gpus == 8
        assert "same-GPU" in capsys.readouterr().out


class TestSimulate:
    def test_prints_comparison(self, capsys):
        code = main(
            [
                "simulate",
                "--model",
                "gpt-m-350m-e8",
                "--nodes",
                "2",
                "--gpus-per-node",
                "4",
                "--requests-per-gpu",
                "2",
                "--generate-len",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "deepspeed" in out
        assert "exflow" in out


class TestServe:
    def test_prints_tail_latency(self, capsys):
        code = main(
            [
                "serve",
                "--model",
                "gpt-m-350m-e8",
                "--nodes",
                "2",
                "--gpus-per-node",
                "2",
                "--requests",
                "32",
                "--rate",
                "300",
                "--generate-len",
                "4",
                "--max-batch",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99 ms" in out
        assert "tokens/s" in out

    def test_bursty_arrival(self, capsys):
        code = main(
            [
                "serve",
                "--model",
                "gpt-m-350m-e8",
                "--nodes",
                "1",
                "--gpus-per-node",
                "2",
                "--arrival",
                "bursty",
                "--requests",
                "16",
                "--rate",
                "200",
                "--generate-len",
                "4",
                "--max-batch",
                "4",
                "--mode",
                "vanilla",
            ]
        )
        assert code == 0
        assert "bursty" in capsys.readouterr().out

    def test_unknown_arrival_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--arrival", "uniform"])

    def test_drift_prints_kept_mass(self, capsys):
        code = main(
            [
                "serve",
                "--model",
                "gpt-m-350m-e8",
                "--nodes",
                "2",
                "--gpus-per-node",
                "2",
                "--requests",
                "24",
                "--rate",
                "500",
                "--generate-len",
                "4",
                "--max-batch",
                "8",
                "--drift",
                "abrupt",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kept transition mass" in out
        assert "drift=abrupt" in out

    def test_replace_every_reports_events_or_none(self, capsys):
        code = main(
            [
                "serve",
                "--model",
                "gpt-m-350m-e8",
                "--nodes",
                "2",
                "--gpus-per-node",
                "2",
                "--requests",
                "48",
                "--rate",
                "1000",
                "--generate-len",
                "6",
                "--max-batch",
                "16",
                "--drift",
                "abrupt",
                "--replace",
                "--replace-every",
                "16",
                "--halflife",
                "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "online re-placement" in out

    def test_unknown_drift_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--drift", "sideways"])


class TestFleet:
    _BASE: ClassVar[list[str]] = [
        "fleet",
        "--model",
        "gpt-m-350m-e8",
        "--nodes",
        "2",
        "--gpus-per-node",
        "2",
        "--requests",
        "48",
        "--rate",
        "400",
        "--generate-len",
        "4",
        "--max-batch",
        "8",
        "--replicas",
        "2",
    ]

    def test_runs_each_router(self, capsys):
        for router in ("round-robin", "jsq", "p2c", "affinity"):
            code = main([*self._BASE, "--router", router])
            assert code == 0
            out = capsys.readouterr().out
            assert router in out
            assert "per-replica" in out
            assert "SLO ok" in out

    def test_autoscale_flag(self, capsys):
        code = main(
            [*self._BASE,"--router", "jsq", "--autoscale", "--min-replicas", "1", "--max-replicas", "4"]
        )
        assert code == 0
        # quiet traffic: the fleet may shrink but the command must succeed
        assert "fleet" in capsys.readouterr().out

    def test_slo_ms_flag_sheds_when_impossible(self, capsys):
        # sub-microsecond SLO: every predicted latency violates it, so the
        # shed % cell must be non-zero (the only percent-formatted zero)
        code = main([*self._BASE, "--router", "jsq", "--slo-ms", "0.001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.00%" not in out

    def test_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            main([*self._BASE, "--router", "alphabetical"])

    def test_conflicting_replica_bounds_error(self):
        # with autoscaling on, --replicas 2 above --max-replicas 1 must
        # surface FleetConfig's ValueError, not silently widen the cap
        with pytest.raises(ValueError):
            main([*self._BASE, "--autoscale", "--max-replicas", "1"])

    def test_chaos_flag_injects_and_reports(self, capsys):
        # --chaos derives a seeded bad day from the nominal horizon; at
        # this load at least the crash fires, so the chaos table and the
        # availability/goodput summary line must render
        code = main(
            [*self._BASE, "--requests", "100", "--rate", "2000", "--chaos", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos: injected failures" in out
        assert "availability" in out
        assert "time-to-recover" in out

    def test_chaos_is_seed_deterministic(self, capsys):
        args = [*self._BASE, "--requests", "64", "--rate", "2000", "--chaos", "--seed", "5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_static_fleet_ignores_autoscaler_bounds(self, capsys):
        # without --autoscale the replica-count bounds are meaningless; a
        # static fleet larger than the default max must just run
        code = main([*self._BASE, "--replicas", "9", "--requests", "16"])
        assert code == 0
        assert "per-replica" in capsys.readouterr().out


class TestHeatmap:
    def test_renders(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.npz"
        main(["profile", "--model", "gpt-m-350m-e8", "--tokens", "300", "--out", str(trace_path)])
        assert main(["heatmap", "--trace", str(trace_path), "--layer", "0"]) == 0
        assert "affinity: layer 0 -> 1" in capsys.readouterr().out

    def test_layer_out_of_range(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.npz"
        main(["profile", "--model", "gpt-m-350m-e8", "--tokens", "100", "--out", str(trace_path)])
        assert main(["heatmap", "--trace", str(trace_path), "--layer", "99"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--strategy", "quantum"])
