"""Unit tests for repro.engine.workload."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import GatingKind, InferenceConfig
from repro.engine.workload import (
    DecodeWorkload,
    make_decode_workload,
    workload_from_trace,
)
from repro.trace.events import RoutingTrace


class TestDecodeWorkload:
    def test_shape_properties(self):
        paths = np.zeros((3, 4, 2), dtype=int)
        w = DecodeWorkload(paths, np.array([0, 0, 1, 1]), num_experts=4, prompt_len=8)
        assert w.iterations == 3
        assert w.num_requests == 4
        assert w.num_layers == 2

    def test_flat_trace(self):
        paths = np.arange(24).reshape(3, 4, 2) % 4
        w = DecodeWorkload(paths, np.array([0, 0, 1, 1]), num_experts=4, prompt_len=8)
        trace = w.flat_trace()
        assert trace.num_tokens == 12
        assert np.array_equal(trace.paths, paths.reshape(12, 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            DecodeWorkload(np.zeros((3, 4), dtype=int), np.zeros(4, int), 4, 8)
        with pytest.raises(ValueError):
            DecodeWorkload(np.zeros((3, 4, 2), dtype=int), np.zeros(3, int), 4, 8)
        with pytest.raises(ValueError):
            DecodeWorkload(np.full((1, 2, 2), 9), np.zeros(2, int), 4, 8)
        with pytest.raises(ValueError):
            DecodeWorkload(np.zeros((1, 2, 2), int), np.zeros(2, int), 4, 0)

    def test_secondary_validation(self):
        paths = np.zeros((2, 2, 2), dtype=int)
        with pytest.raises(ValueError):
            DecodeWorkload(paths, np.zeros(2, int), 4, 8, secondary_paths=np.zeros((1, 2, 2), int))


class TestMakeDecodeWorkload:
    def test_shapes_from_config(self, small_model, small_cluster, small_infer):
        w = make_decode_workload(small_model, small_cluster, small_infer)
        assert w.iterations == small_infer.generate_len
        assert w.num_requests == small_infer.total_requests(small_cluster.num_gpus)
        assert w.num_layers == small_model.num_moe_layers
        assert w.secondary_paths is None

    def test_home_assignment(self, small_model, small_cluster, small_infer):
        w = make_decode_workload(small_model, small_cluster, small_infer)
        counts = np.bincount(w.home_gpu, minlength=small_cluster.num_gpus)
        assert (counts == small_infer.requests_per_gpu).all()

    def test_top2_generates_secondary(self, small_model, small_cluster, small_infer):
        top2 = dataclasses.replace(small_model, gating=GatingKind.TOP2)
        w = make_decode_workload(top2, small_cluster, small_infer)
        assert w.secondary_paths is not None
        assert w.secondary_paths.shape == w.paths.shape

    def test_deterministic_via_seed(self, small_model, small_cluster, small_infer):
        a = make_decode_workload(small_model, small_cluster, small_infer)
        b = make_decode_workload(small_model, small_cluster, small_infer)
        assert np.array_equal(a.paths, b.paths)

    def test_mismatched_routing_rejected(self, small_model, small_cluster, small_infer):
        from repro.trace.markov import MarkovRoutingModel

        wrong = MarkovRoutingModel.with_affinity(16, small_model.num_moe_layers, 0.5)
        with pytest.raises(ValueError):
            make_decode_workload(small_model, small_cluster, small_infer, routing=wrong)


class TestWorkloadFromTrace:
    def test_slices_iteration_major(self, small_cluster):
        infer = InferenceConfig(requests_per_gpu=1, prompt_len=4, generate_len=2)
        r = infer.total_requests(small_cluster.num_gpus)
        paths = np.arange(r * 2 * 3).reshape(r * 2, 3) % 4
        trace = RoutingTrace(paths, num_experts=4)
        w = workload_from_trace(trace, small_cluster, infer)
        assert w.iterations == 2
        assert np.array_equal(w.paths[0], paths[:r])

    def test_insufficient_trace_rejected(self, small_cluster):
        infer = InferenceConfig(requests_per_gpu=4, prompt_len=4, generate_len=8)
        trace = RoutingTrace(np.zeros((10, 3), dtype=int), num_experts=4)
        with pytest.raises(ValueError):
            workload_from_trace(trace, small_cluster, infer)
