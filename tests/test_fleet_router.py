"""Unit tests for the fleet routing policies."""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.online import model_kept_mass
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.fleet.replica import ArrayQueue, Replica, ReplicaState
from repro.fleet.requests import FleetRequest
from repro.fleet.router import (
    AffinityRouter,
    JoinShortestQueueRouter,
    PowerOfTwoRouter,
    RoundRobinRouter,
    make_router,
)
from repro.trace.markov import MarkovRoutingModel

L, E, G = 4, 8, 4


def _replica(rid: int, regime: int = 0, placement=None) -> Replica:
    return Replica(
        replica_id=rid,
        placement=placement or vanilla_placement(L, E, G),
        regime=regime,
        max_batch_requests=8,
        num_gpus=G,
    )


def _req(i: int = 0, regime: int = 0) -> FleetRequest:
    return FleetRequest(i, float(i), 8, 4, regime=regime)


def _load(replica: Replica, n: int) -> None:
    for i in range(n):
        replica.enqueue(_req(1000 + i))


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRoundRobin:
    def test_cycles_in_id_order(self, rng):
        router = RoundRobinRouter()
        reps = [_replica(i) for i in range(3)]
        picks = [router.choose(_req(i), reps, rng).replica_id for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_survives_membership_change(self, rng):
        router = RoundRobinRouter()
        reps = [_replica(i) for i in range(3)]
        router.choose(_req(0), reps, rng)
        picks = {router.choose(_req(i), reps[:2], rng).replica_id for i in range(4)}
        assert picks <= {0, 1}

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            RoundRobinRouter().choose(_req(), [], rng)


class TestJoinShortestQueue:
    def test_picks_least_loaded(self, rng):
        reps = [_replica(i) for i in range(3)]
        _load(reps[0], 3)
        _load(reps[2], 1)
        assert JoinShortestQueueRouter().choose(_req(), reps, rng).replica_id == 1

    def test_counts_active_too(self, rng):
        reps = [_replica(0), _replica(1)]
        _load(reps[0], 2)
        reps[0].admit_up_to_capacity(0.0)  # 2 active, 0 queued
        _load(reps[1], 1)  # 0 active, 1 queued
        assert JoinShortestQueueRouter().choose(_req(), reps, rng).replica_id == 1

    def test_tie_breaks_lowest_id(self, rng):
        reps = [_replica(i) for i in range(3)]
        assert JoinShortestQueueRouter().choose(_req(), reps, rng).replica_id == 0


class TestPowerOfTwo:
    def test_single_replica(self, rng):
        reps = [_replica(0)]
        assert PowerOfTwoRouter().choose(_req(), reps, rng).replica_id == 0

    def test_picks_lighter_of_pair(self):
        reps = [_replica(0), _replica(1)]
        _load(reps[0], 5)
        rng = np.random.default_rng(1)
        router = PowerOfTwoRouter()
        # with two replicas both are always sampled: lighter one must win
        for i in range(10):
            assert router.choose(_req(i), reps, rng).replica_id == 1

    def test_never_picks_worst_of_sampled_pair(self):
        reps = [_replica(i) for i in range(4)]
        loads = {0: 6, 1: 4, 2: 2, 3: 0}
        for rid, n in loads.items():
            _load(reps[rid], n)
        router = PowerOfTwoRouter()
        rng = np.random.default_rng(2)
        # replica 0 is the heaviest: it can only be chosen against... nothing
        picks = [router.choose(_req(i), reps, rng).replica_id for i in range(50)]
        assert 0 not in picks


class TestAffinityRouter:
    @pytest.fixture
    def regimes(self):
        return [
            MarkovRoutingModel.with_affinity(E, L, 0.9, rng=np.random.default_rng(s))
            for s in (11, 222)
        ]

    @pytest.fixture
    def fitted(self, regimes):
        """One placement fit to each regime."""
        return [
            greedy_placement(m.sample(1500, np.random.default_rng(7 + i)), G)
            for i, m in enumerate(regimes)
        ]

    def test_routes_to_matching_placement(self, rng, regimes, fitted):
        reps = [_replica(0, 0, fitted[0]), _replica(1, 1, fitted[1])]
        router = AffinityRouter(regimes, load_weight=0.0)
        # sanity: each placement really keeps more mass under its own regime
        for k in (0, 1):
            own = model_kept_mass(fitted[k], regimes[k])
            other = model_kept_mass(fitted[1 - k], regimes[k])
            assert own > other
        assert router.choose(_req(0, regime=0), reps, rng).replica_id == 0
        assert router.choose(_req(1, regime=1), reps, rng).replica_id == 1

    def test_load_penalty_spills_to_unmatched(self, rng, regimes, fitted):
        reps = [_replica(0, 0, fitted[0]), _replica(1, 1, fitted[1])]
        gap = model_kept_mass(fitted[0], regimes[0]) - model_kept_mass(
            fitted[1], regimes[0]
        )
        router = AffinityRouter(regimes, load_weight=2.0 * gap * reps[0].max_batch)
        _load(reps[0], 1)  # any load now outweighs the kept-mass edge
        assert router.choose(_req(0, regime=0), reps, rng).replica_id == 1

    def test_cache_invalidated_by_placement_identity(self, regimes, fitted):
        router = AffinityRouter(regimes)
        r = _replica(0, 0, fitted[0])
        before = router.kept_mass(r, 0)
        r.placement = fitted[1]  # online re-placement swaps the object
        after = router.kept_mass(r, 0)
        assert before != after
        assert after == pytest.approx(model_kept_mass(fitted[1], regimes[0]))

    def test_cache_safe_across_simulation_reuse(self, regimes, fitted):
        """Regression: a router reused for a second simulation must not
        serve the first run's score for a fresh replica with the same id."""
        router = AffinityRouter(regimes)
        run1 = _replica(0, 0, fitted[0])
        router.kept_mass(run1, 0)
        run2 = _replica(0, 1, fitted[1])  # same replica_id, new placement
        assert router.kept_mass(run2, 0) == pytest.approx(
            model_kept_mass(fitted[1], regimes[0])
        )

    def test_out_of_range_regime_raises(self, rng, regimes, fitted):
        """Regression: out-of-range regimes used to clamp silently to the
        last regime — a labelling bug would just reshape traffic.  Now it
        is a configuration error."""
        reps = [_replica(0, 0, fitted[0]), _replica(1, 1, fitted[1])]
        router = AffinityRouter(regimes, load_weight=0.0)
        with pytest.raises(ValueError, match="regime 99 out of range"):
            router.choose(_req(0, regime=99), reps, rng)

    def test_validation(self, regimes):
        with pytest.raises(ValueError):
            AffinityRouter([])
        with pytest.raises(ValueError):
            AffinityRouter(regimes, load_weight=-0.1)
        with pytest.raises(ValueError):
            AffinityRouter(regimes).kept_mass(_replica(0), 5)


@functools.lru_cache(maxsize=1)
def _affinity_fixtures():
    """Two regimes + one fitted placement each, built once for hypothesis."""
    regimes = tuple(
        MarkovRoutingModel.with_affinity(E, L, 0.9, rng=np.random.default_rng(s))
        for s in (11, 222)
    )
    fitted = tuple(
        greedy_placement(m.sample(1500, np.random.default_rng(7 + i)), G)
        for i, m in enumerate(regimes)
    )
    return regimes, fitted


class TestChooseBatchMatchesScalar:
    """Property: ``choose_batch`` == per-request ``choose`` on a frozen
    snapshot, for every router kind — the contract the tick engine's
    vectorized routing kernels are built on."""

    @given(
        kind=st.sampled_from(["round-robin", "jsq", "p2c", "affinity"]),
        num_replicas=st.integers(1, 6),
        num_requests=st.integers(1, 12),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_batch_equals_scalar(self, kind, num_replicas, num_requests, seed):
        regimes, fitted = _affinity_fixtures()
        rng = np.random.default_rng(seed)

        def build_fleet():
            reps = []
            for rid in range(num_replicas):
                r = _replica(rid, rid % 2, fitted[rid % 2])
                for i in range(int(rng.integers(0, 6))):
                    r.enqueue(_req(100 * rid + i))
                if rng.integers(0, 2):
                    r.admit_up_to_capacity(0.0)  # split load across queue/batch
                reps.append(r)
            return reps

        reps = build_fleet()
        requests = [
            _req(i, regime=int(rng.integers(0, len(regimes))))
            for i in range(num_requests)
        ]

        def build_router():
            router = (
                AffinityRouter(regimes) if kind == "affinity" else make_router(kind)
            )
            if isinstance(router, RoundRobinRouter):
                router._next = int(rng.integers(0, 7))  # same mid-cycle start
            return router

        rng_state = rng.bit_generator.state
        scalar_router = build_router()
        rng.bit_generator.state = rng_state
        batch_router = build_router()

        scalar_rng = np.random.default_rng(seed + 1)
        batch_rng = np.random.default_rng(seed + 1)
        scalar = [scalar_router.choose(q, reps, scalar_rng) for q in requests]
        batch = batch_router.choose_batch(requests, reps, batch_rng)
        assert [r.replica_id for r in batch] == [r.replica_id for r in scalar]


class TestMakeRouter:
    def test_builds_each_kind(self, regimes=None):
        regimes = [MarkovRoutingModel.with_affinity(E, L, 0.5)]
        assert make_router("round-robin").name == "round-robin"
        assert make_router("jsq").name == "jsq"
        assert make_router("p2c").name == "p2c"
        assert make_router("affinity", regimes=regimes).name == "affinity"

    def test_affinity_requires_regimes(self):
        with pytest.raises(ValueError):
            make_router("affinity")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_router("random")


class TestReplicaGuards:
    def test_enqueue_rejected_when_not_servable(self):
        r = _replica(0)
        r.state = ReplicaState.BOOTING
        with pytest.raises(RuntimeError):
            r.enqueue(_req())

    def test_draining_still_accepts_queued_work(self):
        r = _replica(0)
        r.state = ReplicaState.DRAINING
        r.enqueue(_req())  # drain path keeps serving what it already owns
        assert r.queue_len == 1

    def test_admit_respects_cap_and_priority(self):
        r = _replica(0)
        for i in range(6):
            r.enqueue(FleetRequest(i, 0.0, 8, 4, priority=1))
        r.enqueue(FleetRequest(6, 0.0, 8, 4, priority=0))
        r.max_batch = 4
        admitted = r.admit_up_to_capacity(1.0)
        assert len(admitted) == 4
        # the interactive request jumped the whole batch queue
        assert admitted[0].request.req_id == 6
        assert r.queue_len == 3

    def test_home_gpus_round_robin(self):
        r = _replica(0)
        for i in range(5):
            r.enqueue(_req(i))
        homes = [e.home_gpu for e in r.admit_up_to_capacity(0.0)]
        assert homes == [0, 1, 2, 3, 0]


class TestArrayQueue:
    def test_fifo_across_growth(self):
        q = ArrayQueue(capacity=2)
        for i in range(100):
            q.push(i)
        assert len(q) == 100
        assert q.pop_many(30).tolist() == list(range(30))
        assert q.pop_many(5).tolist() == list(range(30, 35))
        assert len(q) == 65

    def test_pop_many_clamps_to_size(self):
        q = ArrayQueue()
        q.push(7)
        got = q.pop_many(10)
        assert got.tolist() == [7]
        assert len(q) == 0
        assert q.pop_many(3).size == 0

    def test_compaction_reclaims_popped_space(self):
        q = ArrayQueue(capacity=4)
        for i in range(4):
            q.push(i)
        q.pop_many(3)
        for i in range(4, 7):
            q.push(i)  # forces compaction, not growth
        assert q.view().tolist() == [3, 4, 5, 6]
        assert q._buf.shape[0] == 4

    def test_interleaved_push_pop_keeps_order(self):
        q = ArrayQueue(capacity=3)
        expect = []
        got = []
        for i in range(50):
            q.push(i)
            expect.append(i)
            if i % 3 == 2:
                got.extend(q.pop_many(2).tolist())
        got.extend(q.drain().tolist())
        assert got == expect

    def test_view_is_zero_copy_window(self):
        q = ArrayQueue()
        for i in range(5):
            q.push(10 * i)
        v = q.view()
        assert v.tolist() == [0, 10, 20, 30, 40]
        assert v.base is q._buf

    def test_drain_empties(self):
        q = ArrayQueue()
        for i in range(8):
            q.push(i)
        assert q.drain().tolist() == list(range(8))
        assert len(q) == 0
        assert q.drain().size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayQueue(capacity=0)
