"""Tests for ``repro lint`` — the RPL0xx static-analysis rules.

Each rule is proven on a minimal known-bad fixture and its good twin:
the bad snippet must fire exactly the expected code, the twin must stay
silent.  The suite also pins the suppression syntax, per-directory
config, CLI exit codes / ``--json`` shape, and — the self-check the CI
job depends on — that the repo's own ``src/`` lints clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_CONFIG,
    RULES,
    Diagnostic,
    LintConfig,
    PathOverride,
    lint_paths,
    lint_sources,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: default path used for fixtures: inside every rule's scope
SIM_PATH = "src/repro/engine/snippet.py"


def codes(diagnostics: list[Diagnostic]) -> list[str]:
    return [d.code for d in diagnostics]


def lint_snippet(source: str, path: str = SIM_PATH) -> list[Diagnostic]:
    return lint_sources([(path, textwrap.dedent(source))])


class TestFramework:
    def test_all_six_rules_registered(self):
        expected = {"RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006"}
        assert expected <= set(RULES)
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name and rule.description

    def test_syntax_error_becomes_rpl000(self):
        diags = lint_snippet("def broken(:\n")
        assert codes(diags) == ["RPL000"]
        assert "syntax error" in diags[0].message

    def test_diagnostics_sorted_and_formatted(self):
        src = """
        import numpy as np
        b = np.random.rand(2)
        a = np.random.rand(1)
        """
        diags = lint_snippet(src)
        assert [d.line for d in diags] == sorted(d.line for d in diags)
        assert diags[0].format().startswith(f"{SIM_PATH}:3:")
        record = diags[0].to_dict()
        assert set(record) == {"path", "line", "col", "code", "message"}


class TestSuppressions:
    BAD = "import numpy as np\nx = np.random.rand(3){comment}\n"

    def test_fires_without_comment(self):
        assert codes(lint_snippet(self.BAD.format(comment=""))) == ["RPL001"]

    def test_line_disable(self):
        src = self.BAD.format(comment="  # repro-lint: disable=RPL001")
        assert lint_snippet(src) == []

    def test_line_disable_multiple_codes(self):
        src = self.BAD.format(comment="  # repro-lint: disable=RPL003,RPL001")
        assert lint_snippet(src) == []

    def test_line_disable_wrong_code_still_fires(self):
        src = self.BAD.format(comment="  # repro-lint: disable=RPL002")
        assert codes(lint_snippet(src)) == ["RPL001"]

    def test_line_disable_all(self):
        src = self.BAD.format(comment="  # repro-lint: disable=all")
        assert lint_snippet(src) == []

    def test_file_level_disable(self):
        src = "# repro-lint: disable-file=RPL001\n" + self.BAD.format(comment="")
        assert lint_snippet(src) == []

    def test_disable_on_other_line_does_not_leak(self):
        src = (
            "import numpy as np\n"
            "ok = 1  # repro-lint: disable=RPL001\n"
            "x = np.random.rand(3)\n"
        )
        assert codes(lint_snippet(src)) == ["RPL001"]


class TestConfig:
    def test_default_config_drops_rng_rules_in_tests(self):
        enabled = DEFAULT_CONFIG.rules_for("tests/test_foo.py")
        assert "RPL001" not in enabled
        assert "RPL002" not in enabled
        assert "RPL003" in enabled

    def test_default_config_full_set_elsewhere(self):
        assert DEFAULT_CONFIG.rules_for("src/repro/engine/costs.py") == frozenset(RULES)

    def test_path_override_ordering(self):
        cfg = LintConfig(
            overrides=(
                PathOverride("src/", disable=frozenset({"RPL003"})),
                PathOverride("src/repro/engine/", enable=frozenset({"RPL003"})),
            )
        )
        assert "RPL003" not in cfg.rules_for("src/repro/fleet/router.py")
        assert "RPL003" in cfg.rules_for("src/repro/engine/costs.py")

    def test_test_path_shapes(self):
        bad = "import numpy as np\nx = np.random.rand(3)\n"
        for path in ("tests/test_x.py", "pkg/tests/helper.py", "conftest.py"):
            assert lint_snippet(bad, path=path) == [], path


class TestRPL001UnseededRandomness:
    @pytest.mark.parametrize(
        "stmt",
        [
            "np.random.rand(3)",
            "np.random.seed(0)",
            "np.random.choice([1, 2])",
            "np.random.default_rng()",
            "np.random.default_rng(None)",
            "np.random.default_rng(seed=None)",
            "np.random.RandomState()",
            "random.random()",
            "random.randint(0, 3)",
            "random.seed(4)",
        ],
    )
    def test_bad(self, stmt):
        src = f"import numpy as np\nimport random\nx = {stmt}\n"
        assert codes(lint_snippet(src)) == ["RPL001"], stmt

    @pytest.mark.parametrize(
        "stmt",
        [
            "np.random.default_rng(0)",
            "np.random.default_rng(seed)",
            "np.random.default_rng(seed=7)",
            "np.random.Generator(np.random.PCG64(3))",
            "np.random.SeedSequence(1)",
            "random.Random(5)",
        ],
    )
    def test_good_twin(self, stmt):
        src = f"import numpy as np\nimport random\nseed = 1\nx = {stmt}\n"
        assert lint_snippet(src) == [], stmt

    def test_aliased_imports_resolved(self):
        src = (
            "from numpy.random import default_rng\n"
            "from numpy import random as npr\n"
            "a = default_rng()\n"
            "b = npr.rand(2)\n"
        )
        assert codes(lint_snippet(src)) == ["RPL001", "RPL001"]

    def test_exempt_in_test_code(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert lint_snippet(src, path="tests/test_rng.py") == []

    def test_generator_method_calls_are_fine(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.random(3)\n"
        )
        assert lint_snippet(src) == []


class TestRPL002WallClock:
    @pytest.mark.parametrize(
        "stmt",
        [
            "import time\nt = time.time()",
            "import time\nt = time.time_ns()",
            "from time import time\nt = time()",
            "import datetime\nt = datetime.datetime.now()",
            "from datetime import datetime\nt = datetime.now()",
            "import os\nv = os.environ['HOME']",
            "import os\nv = os.getenv('HOME')",
        ],
    )
    def test_bad(self, stmt):
        assert codes(lint_snippet(stmt + "\n")) == ["RPL002"], stmt

    def test_perf_counter_allowed(self):
        # measuring the simulator's own wall time never feeds results
        src = "import time\nt0 = time.perf_counter()\n"
        assert lint_snippet(src) == []

    def test_perf_counter_allowed_in_obs(self):
        # the self-profiling phase timers bracket simulator phases with
        # perf_counter; RPL002's allowance is what lets repro.obs exist
        src = (
            "from time import perf_counter\n"
            "t0 = perf_counter()\n"
            "elapsed = perf_counter() - t0\n"
        )
        assert lint_snippet(src, path="src/repro/obs/profile.py") == []

    def test_wall_clock_flagged_in_obs(self):
        # obs is simulator scope: telemetry must not stamp wall-clock times
        src = "import time\nt = time.time()\n"
        assert codes(lint_snippet(src, path="src/repro/obs/recorder.py")) == ["RPL002"]

    def test_only_fires_inside_simulator_packages(self):
        src = "import time\nt = time.time()\n"
        assert lint_snippet(src, path="benchmarks/bench_x.py") == []
        assert lint_snippet(src, path="src/repro/analysis/report.py") == []
        for pkg in ("engine", "fleet", "core", "scenarios", "obs"):
            path = f"src/repro/{pkg}/mod.py"
            assert codes(lint_snippet(src, path=path)) == ["RPL002"], pkg


class TestRPL003UnitSuffix:
    @pytest.mark.parametrize(
        "stmt",
        [
            "total = wait_ms + slo_s",
            "total = wait_ms - elapsed_us",
            "late = deadline_s < now_ms",
            "cap_gb = shard_bytes",
            "x_ms = y_s",
            "x_ms += y_s",
            "budget = size_gb + size_bytes",
        ],
    )
    def test_bad(self, stmt):
        src = (
            "wait_ms = slo_s = elapsed_us = deadline_s = now_ms = 1.0\n"
            "shard_bytes = size_gb = size_bytes = y_s = x_ms = 1.0\n"
            f"{stmt}\n"
        )
        assert codes(lint_snippet(src)) == ["RPL003"], stmt

    @pytest.mark.parametrize(
        "stmt",
        [
            "total_ms = wait_ms + stall_ms",
            "slo_s = slo_ms / 1e3",  # conversion via division: the fix
            "deadline_ms = now_ms + slo_s * 1e3",
            "late = deadline_s < now_ms / 1e3",
            "frac = used_bytes / cap_bytes",
        ],
    )
    def test_good_twin(self, stmt):
        src = (
            "wait_ms = stall_ms = slo_ms = now_ms = 1.0\n"
            "slo_s = deadline_s = used_bytes = cap_bytes = 1.0\n"
            f"{stmt}\n"
        )
        assert lint_snippet(src) == [], stmt

    def test_return_conflict(self):
        src = """
        def step_time_ms(dt_s):
            return dt_s
        """
        assert codes(lint_snippet(src)) == ["RPL003"]

    def test_return_conversion_ok(self):
        src = """
        def step_time_ms(dt_s):
            return dt_s * 1e3
        """
        assert lint_snippet(src) == []

    def test_keyword_argument_conflict(self):
        src = """
        def f(slo_ms=0.0):
            return slo_ms

        def g(timeout_s):
            return f(slo_ms=timeout_s)
        """
        assert codes(lint_snippet(src)) == ["RPL003"]

    def test_attribute_suffixes_tracked(self):
        src = """
        def f(cfg, stall_s):
            return cfg.slo_ms + stall_s
        """
        assert codes(lint_snippet(src)) == ["RPL003"]


class TestRPL004FrozenSpec:
    def test_mutating_constructed_instance(self):
        src = """
        from repro.config import FleetConfig
        cfg = FleetConfig(num_replicas=2)
        cfg.router = "jsq"
        """
        assert codes(lint_snippet(src)) == ["RPL004"]

    def test_mutating_annotated_parameter(self):
        src = """
        from repro.scenarios import Scenario

        def tweak(s: Scenario) -> None:
            s.seed = 3
        """
        assert codes(lint_snippet(src)) == ["RPL004"]

    def test_setattr_escape_flagged(self):
        src = """
        def hack(obj):
            object.__setattr__(obj, "seed", 4)
        """
        assert codes(lint_snippet(src)) == ["RPL004"]

    def test_setattr_in_own_post_init_allowed(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Local:
            x: int = 0

            def __post_init__(self) -> None:
                object.__setattr__(self, "x", 1)
        """
        assert lint_snippet(src) == []

    def test_spec_modules_exempt_from_setattr_rule(self):
        src = "def hack(obj):\n    object.__setattr__(obj, 'x', 1)\n"
        assert lint_snippet(src, path="src/repro/config.py") == []
        assert lint_snippet(src, path="src/repro/scenarios/spec.py") == []

    def test_replace_is_the_blessed_path(self):
        src = """
        import dataclasses
        from repro.config import FleetConfig
        cfg = FleetConfig(num_replicas=2)
        bigger = dataclasses.replace(cfg, num_replicas=4)
        """
        assert lint_snippet(src) == []


class TestRPL005SetIteration:
    @pytest.mark.parametrize(
        "body",
        [
            "for x in {1, 2, 3}:\n    use(x)",
            "for x in set(items):\n    use(x)",
            "s = set(items)\nfor x in s:\n    use(x)",
            "out = [f(x) for x in set(items)]",
            "out = {x: 1 for x in frozenset(items)}",
            "out = list(set(items))",
            "out = tuple({1, 2})",
            "out = dict.fromkeys(set(items))",
        ],
    )
    def test_bad(self, body):
        src = "items = [1, 2]\n\ndef use(x):\n    return x\n\n" + body + "\n"
        diags = lint_snippet(src)
        assert codes(diags) == ["RPL005"], body

    @pytest.mark.parametrize(
        "body",
        [
            "for x in sorted(set(items)):\n    use(x)",
            "out = [f(x) for x in sorted({1, 2})]",
            "out = sorted(set(items))",
            "hit = 3 in set(items)",
            "n = len(set(items))",
            "m = max(set(items))",
            "out = {x for x in set(items)}",  # set -> set: still unordered
            "for x in [1, 2]:\n    use(x)",
            "for k in {'a': 1}:\n    use(k)",  # dict order is insertion order
        ],
    )
    def test_good_twin(self, body):
        src = (
            "items = [1, 2]\n\ndef use(x):\n    return x\n\n"
            "def f(x):\n    return x\n\n" + body + "\n"
        )
        assert lint_snippet(src) == [], body

    def test_scoped_to_simulator_dirs(self):
        src = "for x in {1, 2}:\n    print(x)\n"
        assert lint_snippet(src, path="examples/quickstart.py") == []
        assert codes(lint_snippet(src, path="src/repro/core/placement/x.py")) == [
            "RPL005"
        ]


class TestRPL006SeedThreading:
    def test_dropped_seed_flagged(self):
        src = """
        def helper(n, seed=0):
            return n + seed

        def run(seed):
            return helper(3)
        """
        assert codes(lint_snippet(src)) == ["RPL006"]

    def test_keyword_forwarding_ok(self):
        src = """
        def helper(n, seed=0):
            return n + seed

        def run(seed):
            return helper(3, seed=seed)
        """
        assert lint_snippet(src) == []

    def test_positional_forwarding_ok(self):
        src = """
        def helper(seed):
            return seed

        def run(seed):
            return helper(seed + 1)
        """
        assert lint_snippet(src) == []

    def test_derived_rng_counts_as_forwarding(self):
        src = """
        import numpy as np

        def helper(n, rng=None):
            return n

        def run(seed):
            rng = np.random.default_rng(seed)
            return helper(3, rng)
        """
        assert lint_snippet(src) == []

    def test_cross_file_index(self):
        lib = """
        def sample(n, seed=0):
            return n + seed
        """
        app = """
        def run(seed):
            return sample(4)
        """
        diags = lint_sources(
            [
                ("src/repro/engine/lib.py", textwrap.dedent(lib)),
                ("src/repro/engine/app.py", textwrap.dedent(app)),
            ]
        )
        assert codes(diags) == ["RPL006"]
        assert diags[0].path == "src/repro/engine/app.py"

    def test_ambiguous_name_not_flagged(self):
        # two defs share a name, only one takes a seed: resolution would be
        # a coin flip, so the rule stays quiet
        src = """
        def sample(n, seed=0):
            return n

        class Other:
            def sample(self, n):
                return n

        def run(seed):
            return sample(4)
        """
        assert lint_snippet(src) == []

    def test_function_without_seed_param_not_checked(self):
        src = """
        def helper(n, seed=0):
            return n

        def run():
            return helper(3)
        """
        assert lint_snippet(src) == []


class TestSelfCheck:
    """The repo's own code must satisfy its own invariants."""

    def test_src_lints_clean(self):
        diags = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert diags == [], "\n".join(d.format() for d in diags)

    def test_benchmarks_and_examples_lint_clean(self):
        diags = lint_paths(
            [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"], root=REPO_ROOT
        )
        assert diags == [], "\n".join(d.format() for d in diags)


class TestCLI:
    def run_cli(self, *argv: str, cwd: Path) -> subprocess.CompletedProcess:
        import os

        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
        )

    @pytest.fixture()
    def bad_tree(self, tmp_path: Path) -> Path:
        pkg = tmp_path / "src" / "repro" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        return tmp_path

    def test_exit_one_and_text_output_on_violation(self, bad_tree: Path):
        proc = self.run_cli("src", cwd=bad_tree)
        assert proc.returncode == 1
        assert "RPL001" in proc.stdout
        assert "found 1 diagnostic(s)" in proc.stdout

    def test_json_output_shape(self, bad_tree: Path):
        proc = self.run_cli("src", "--json", cwd=bad_tree)
        assert proc.returncode == 1
        records = json.loads(proc.stdout)
        assert len(records) == 1
        record = records[0]
        assert record["code"] == "RPL001"
        assert record["path"].endswith("bad.py")
        assert record["line"] == 2
        assert set(record) == {"path", "line", "col", "code", "message"}

    def test_exit_zero_on_clean_tree(self, tmp_path: Path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "ok.py").write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
        proc = self.run_cli("src", cwd=tmp_path)
        assert proc.returncode == 0
        assert proc.stdout.strip() == ""

    def test_json_empty_list_when_clean(self, tmp_path: Path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        proc = self.run_cli("ok.py", "--json", cwd=tmp_path)
        assert proc.returncode == 0
        assert json.loads(proc.stdout) == []

    def test_list_rules(self, tmp_path: Path):
        proc = self.run_cli("--list-rules", cwd=tmp_path)
        assert proc.returncode == 0
        for code in ("RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006"):
            assert code in proc.stdout

    def test_missing_path_errors(self, tmp_path: Path):
        proc = self.run_cli("no_such_dir", cwd=tmp_path)
        assert proc.returncode != 0
