"""SignalDetector unit tests: synthetic hook streams, scoring, FP guard.

The detector sees only the benign half of the recorder protocol, so every
behaviour here is driven by hand-built hook sequences: watchdog outages
(completion-gap and queue-stall), premature alarms resolved by observed
progress, replacement write-off and revival, brownout open/close from
step-time z-scores, and deliberate blindness to the chaos channel.  The
Hypothesis guard at the bottom holds the default thresholds to zero
alerts and zero detections across arbitrary chaos-free, adequately
provisioned steady-traffic fleets.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chaos import BrownoutSpec, ChaosSpec
from repro.config import ClusterConfig, FleetConfig, ModelConfig, ServingConfig
from repro.obs.detect import (
    ObservedBrownout,
    ObservedOutage,
    SignalDetector,
    score_against_chaos,
)
from repro.obs.slo import SloSpec
from repro.scenarios import Scenario, TelemetrySpec, run

STEP_S = 0.01  # synthetic steady step cadence; gap threshold = 12 * this


def make_detector(num_replicas: int = 2, **kwargs) -> SignalDetector:
    det = SignalDetector(**kwargs)
    det.on_run_start(0.0, {})
    for rid in range(num_replicas):
        det.on_replica_start(0.0, rid, 0, False, 0.0, 0.0)
    return det


def warm(det: SignalDetector, t: float, steps: int = 3, replicas=(0, 1)) -> float:
    """Feed identical steady steps so baselines and step counts exist."""
    for _ in range(steps):
        t += STEP_S
        for rid in replicas:
            det.on_step_end(t, rid, STEP_S, 4)
    return t


def tick_along(det: SignalDetector, t: float, until: float, rid: int = 1) -> float:
    """Keep one healthy replica stepping so the watchdog clock advances."""
    while t < until:
        t += STEP_S
        det.on_step_end(t, rid, STEP_S, 4)
    return t


class TestOutageWatchdogs:
    def test_completion_gap_opens_and_closes_at_run_end(self):
        det = make_detector()
        t = warm(det, 0.0)
        det.on_enqueue(t, 0, 100)
        det.on_admit(t, 0, [100], 0.0)
        t_silent = t
        t = tick_along(det, t, t_silent + 0.5)
        det.on_run_end(t)
        assert len(det.outages) == 1
        o = det.outages[0]
        assert o.replica == 0
        assert o.signal == "completion-gap"
        assert o.resolution == "run-end"
        # the alarm fires once the gap exceeds gap_factor expected steps
        assert o.detected_s >= t_silent + 12 * STEP_S
        assert o.detected_s < t_silent + 20 * STEP_S
        assert o.closed_s == t
        assert det.brownouts == ()

    def test_queue_stall_when_nothing_was_admitted(self):
        det = make_detector()
        t = warm(det, 0.0)
        det.on_enqueue(t, 0, 100)  # queued, never admitted
        t = tick_along(det, t, t + 0.5)
        det.on_run_end(t)
        assert [o.signal for o in det.outages] == ["queue-stall"]

    def test_observed_progress_resolves_as_resumed(self):
        det = make_detector()
        t = warm(det, 0.0)
        det.on_enqueue(t, 0, 100)
        det.on_admit(t, 0, [100], 0.0)
        t = tick_along(det, t, t + 0.3)
        det.on_complete(t + 0.001, 0, 100, 0.0, t, 6)
        det.on_run_end(t + 0.01)
        assert [o.resolution for o in det.outages] == ["resumed"]
        assert det.outages[0].closed_s == pytest.approx(t + 0.001)

    def test_idle_replica_never_alarms(self):
        det = make_detector()
        t = warm(det, 0.0)
        # replica 0 is silent but holds no believed work: not an outage
        t = tick_along(det, t, t + 1.0)
        det.on_run_end(t)
        assert det.outages == ()

    def test_boot_ready_closes_as_replaced_and_writes_off(self):
        det = make_detector()
        t = warm(det, 0.0)
        det.on_enqueue(t, 0, 100)
        det.on_admit(t, 0, [100], 0.0)
        t = tick_along(det, t, t + 0.3)
        det.on_replica_start(t, 2, 0, True, t + 0.005, t)
        det.on_boot_ready(t + 0.005, 2)
        assert [o.resolution for o in det.outages] == ["replaced"]
        # written off: the phantom believed batch must not re-alarm
        t = tick_along(det, t + 0.005, t + 1.0)
        assert len(det.outages) == 1
        # observed progress revives the watch; fresh silence alarms again
        det.on_complete(t, 0, 100, 0.0, 0.0, 6)
        det.on_enqueue(t, 0, 101)
        det.on_admit(t, 0, [101], 0.0)
        t = tick_along(det, t, t + 0.5)
        det.on_run_end(t)
        assert len(det.outages) == 2
        assert det.outages[1].resolution == "run-end"

    def test_sparse_replica_ids_rejected(self):
        det = make_detector()
        with pytest.raises(ValueError, match="densely"):
            det.on_replica_start(0.0, 5, 0, False, 0.0, 0.0)


class TestBrownoutDetection:
    def test_slow_streak_opens_and_calm_streak_closes(self):
        det = make_detector(num_replicas=1)
        t = warm(det, 0.0, steps=12, replicas=(0,))
        for _ in range(3):  # 5x baseline, 3 consecutive: opens
            t += 5 * STEP_S
            det.on_step_end(t, 0, 5 * STEP_S, 4)
        t_open = t
        for _ in range(3):  # back to baseline, 3 consecutive: closes
            t += STEP_S
            det.on_step_end(t, 0, STEP_S, 4)
        det.on_run_end(t)
        assert len(det.brownouts) == 1
        b = det.brownouts[0]
        assert b.replica == 0
        assert b.resolution == "cleared"
        assert b.detected_s == pytest.approx(t_open)
        assert b.closed_s > b.detected_s
        assert b.peak_z > 6.0
        assert det.outages == ()

    def test_single_slow_step_does_not_open(self):
        det = make_detector(num_replicas=1)
        t = warm(det, 0.0, steps=12, replicas=(0,))
        det.on_step_end(t + 5 * STEP_S, 0, 5 * STEP_S, 4)
        t = warm(det, t + 5 * STEP_S, steps=5, replicas=(0,))
        det.on_run_end(t)
        assert det.brownouts == ()

    def test_batch_growth_is_not_a_brownout(self):
        # doubling the batch roughly doubles the step: the normalization
        # must absorb it instead of paging
        det = make_detector(num_replicas=1)
        t = warm(det, 0.0, steps=12, replicas=(0,))
        for _ in range(6):
            t += 2 * STEP_S
            det.on_step_end(t, 0, 2 * STEP_S, 8)
        det.on_run_end(t)
        assert det.brownouts == ()

    def test_still_open_at_run_end(self):
        det = make_detector(num_replicas=1)
        t = warm(det, 0.0, steps=12, replicas=(0,))
        for _ in range(4):
            t += 5 * STEP_S
            det.on_step_end(t, 0, 5 * STEP_S, 4)
        det.on_run_end(t)
        assert [b.resolution for b in det.brownouts] == ["run-end"]


class TestChaosBlindness:
    def test_chaos_channel_hooks_are_inert(self):
        det = make_detector()
        t = warm(det, 0.0)
        det.on_preempt(t, 0, 0.001)
        det.on_fail(t, 0, "crash", 5, 3)
        det.on_retry(t, 100, 0, 1, 0.001, True)
        det.on_lost(t, 100, 0, 3, "retries-exhausted", True)
        det.on_recover(t, 2, 0, 0.005)
        t = warm(det, t, steps=2)
        det.on_run_end(t)
        # being told about the fault must not create a detection: only
        # request-level silence may
        assert det.outages == ()
        assert det.brownouts == ()
        assert det.summary()["observed_mttr_s"] == 0.0


class TestDetectorValidation:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"gap_factor": 1.0},
            {"outage_min_steps": 0},
            {"brownout_min_steps": 0},
            {"brownout_open_streak": 0},
            {"brownout_close_streak": 0},
            {"z_open": 0.0},
            {"rel_open": 1.0},
            {"rel_close": 0.9},
            {"z_floor_frac": 0.0},
        ),
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SignalDetector(**kwargs)


def _failure(t, rid, lost_active=1, lost_queued=0, recovered=None, kind="crash"):
    return SimpleNamespace(
        time_s=t,
        replica_id=rid,
        kind=kind,
        lost_active=lost_active,
        lost_queued=lost_queued,
        recovered_at_s=recovered,
    )


def _outage(rid, detected, closed, resolution="replaced"):
    return ObservedOutage(
        replica=rid,
        signal="completion-gap",
        detected_s=detected,
        closed_s=closed,
        resolution=resolution,
        last_progress_s=detected,
    )


class TestScoring:
    def test_perfect_detection(self):
        score = score_against_chaos(
            outages=[_outage(0, 1.5, 3.0)],
            brownouts=[],
            failures=[_failure(1.0, 0, recovered=2.0)],
            chaos=None,
        )
        out = score["outages"]
        assert out == {
            "true_events": 1,
            "observable_events": 1,
            "detected": 1,
            "observed_events": 1,
            "false_alarms": 0,
            "recall": 1.0,
            "precision": 1.0,
            "detection_latency": {"median_s": 0.5, "mean_s": 0.5, "max_s": 0.5},
            "observed_mttr_s": 1.5,
            "true_mttr_s": 1.0,
        }

    def test_invisible_fault_excluded_from_observable(self):
        # a crash that destroyed no work cannot be seen by request-level
        # signals; missing it does not count against recall
        score = score_against_chaos(
            outages=[],
            brownouts=[],
            failures=[_failure(1.0, 0, lost_active=0, lost_queued=0)],
            chaos=None,
        )
        assert score["outages"]["observable_events"] == 0
        assert score["outages"]["recall"] == 1.0

    def test_false_alarm_costs_precision_not_recall(self):
        score = score_against_chaos(
            outages=[_outage(0, 1.5, 3.0), _outage(1, 2.0, 3.0)],
            brownouts=[],
            failures=[_failure(1.0, 0)],
            chaos=None,
        )
        assert score["outages"]["false_alarms"] == 1
        assert score["outages"]["precision"] == 0.5
        assert score["outages"]["recall"] == 1.0

    def test_detection_before_fault_does_not_match(self):
        score = score_against_chaos(
            outages=[_outage(0, 0.5, 0.9)],
            brownouts=[],
            failures=[_failure(1.0, 0)],
            chaos=None,
        )
        assert score["outages"]["detected"] == 0
        assert score["outages"]["false_alarms"] == 1

    def test_each_detection_matches_at_most_one_fault(self):
        score = score_against_chaos(
            outages=[_outage(0, 1.5, 3.0)],
            brownouts=[],
            failures=[_failure(1.0, 0), _failure(1.2, 0)],
            chaos=None,
        )
        assert score["outages"]["detected"] == 1
        assert score["outages"]["recall"] == 0.5

    def test_brownouts_match_on_replica_and_overlap(self):
        chaos = ChaosSpec(
            brownouts=(
                BrownoutSpec(start_s=1.0, duration_s=1.0, replica=0, factor=3.0),
                BrownoutSpec(start_s=5.0, duration_s=1.0, replica=1, factor=3.0),
            )
        )
        observed = [
            ObservedBrownout(
                replica=0, detected_s=1.2, closed_s=1.8, resolution="cleared", peak_z=9.0
            ),
            # wrong replica for the second window: unmatched on both sides
            ObservedBrownout(
                replica=0, detected_s=5.2, closed_s=5.8, resolution="cleared", peak_z=9.0
            ),
        ]
        score = score_against_chaos(
            outages=[], brownouts=observed, failures=[], chaos=chaos
        )
        bro = score["brownouts"]
        assert bro["true_events"] == 2
        assert bro["detected"] == 1
        assert bro["false_alarms"] == 1
        assert bro["recall"] == 0.5
        assert bro["precision"] == 0.5
        assert bro["detection_latency"]["median_s"] == pytest.approx(0.2)


# -- the false-positive guard ---------------------------------------------

FP_MODEL = ModelConfig(
    name="detect-fp-test", num_layers=4, num_experts=8, d_model=64, num_heads=4
)
FP_CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=2)

serving_cfgs = st.builds(
    ServingConfig,
    arrival=st.sampled_from(["poisson", "bursty"]),
    arrival_rate_rps=st.sampled_from([300.0, 1000.0, 3000.0]),
    num_requests=st.integers(60, 140),
    generate_len=st.integers(4, 8),
    max_batch_requests=st.sampled_from([4, 8]),
    prompt_len=st.sampled_from([8, 16, 32]),
    seed=st.integers(0, 7),
)
fleet_cfgs = st.builds(
    FleetConfig,
    num_replicas=st.integers(2, 4),
    router=st.sampled_from(["round-robin", "jsq", "p2c"]),
    num_regimes=st.just(2),
    slo_ms=st.just(10000.0),
    batch_slo_ms=st.just(20000.0),
    max_queue_per_replica=st.just(64),
    engine=st.sampled_from(["event", "tick"]),
)


@settings(max_examples=10, deadline=None)
@given(serving=serving_cfgs, fleet=fleet_cfgs)
def test_no_alerts_on_chaos_free_steady_traffic(serving, fleet):
    """Default thresholds stay silent on any adequately provisioned day."""
    s = Scenario(
        name="detect-fp-guard",
        model=FP_MODEL,
        cluster=FP_CLUSTER,
        serving=serving,
        fleet=fleet,
        telemetry=TelemetrySpec(slo=SloSpec()),
    )
    report = run(s)
    # the property is about monitoring, not capacity planning: a draw
    # that legitimately sheds is outside the steady-day contract
    assume(report.shed_fraction == 0.0)
    assert report.alerts == []
    assert report.detection["outages"] == []
    assert report.detection["brownouts"] == []
    scored = report.detection["scored"]
    assert scored["outages"]["false_alarms"] == 0
    assert scored["brownouts"]["false_alarms"] == 0
    assert report.slo["ok"] is True
