"""Unit tests for repro.cluster.topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import Tier, Topology
from repro.config import ClusterConfig


@pytest.fixture
def topo() -> Topology:
    return Topology(ClusterConfig(num_nodes=2, gpus_per_node=2))


class TestTierMatrix:
    def test_diagonal_local(self, topo):
        assert (np.diag(topo.tier_matrix) == Tier.LOCAL).all()

    def test_intra_node(self, topo):
        assert topo.tier(0, 1) is Tier.INTRA
        assert topo.tier(2, 3) is Tier.INTRA

    def test_inter_node(self, topo):
        assert topo.tier(0, 2) is Tier.INTER
        assert topo.tier(1, 3) is Tier.INTER

    def test_symmetric(self, topo):
        assert (topo.tier_matrix == topo.tier_matrix.T).all()

    def test_single_node_has_no_inter(self):
        t = Topology(ClusterConfig(num_nodes=1, gpus_per_node=4))
        assert (t.tier_matrix != Tier.INTER).all()

    def test_tier_ordering_matches_cost(self, topo):
        """Tiers are ordered cheapest-first in both latency and bandwidth."""
        lat = [topo.link_for_tier(t).latency_s for t in Tier]
        bw = [topo.link_for_tier(t).bandwidth_Bps for t in Tier]
        assert lat == sorted(lat)
        assert bw == sorted(bw, reverse=True)


class TestMatrices:
    def test_latency_matrix_values(self, topo):
        c = topo.cluster
        assert topo.latency_matrix[0, 0] == c.local_link.latency_s
        assert topo.latency_matrix[0, 1] == c.intra_link.latency_s
        assert topo.latency_matrix[0, 2] == c.inter_link.latency_s

    def test_inv_bandwidth_matrix(self, topo):
        c = topo.cluster
        assert topo.inv_bandwidth_matrix[0, 2] == pytest.approx(
            1.0 / c.inter_link.bandwidth_Bps
        )

    def test_node_of_gpu(self, topo):
        assert topo.node_of_gpu.tolist() == [0, 0, 1, 1]


class TestClassifyBytes:
    def test_partition_sums_to_total(self, topo):
        rng = np.random.default_rng(0)
        traffic = rng.random((4, 4)) * 100
        by_tier = topo.classify_bytes(traffic)
        assert sum(by_tier.values()) == pytest.approx(traffic.sum())

    def test_diagonal_is_local(self, topo):
        traffic = np.zeros((4, 4))
        np.fill_diagonal(traffic, 5.0)
        by_tier = topo.classify_bytes(traffic)
        assert by_tier[Tier.LOCAL] == pytest.approx(20.0)
        assert by_tier[Tier.INTRA] == 0.0
        assert by_tier[Tier.INTER] == 0.0

    def test_wrong_shape_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.classify_bytes(np.zeros((3, 3)))

    def test_negative_rejected(self, topo):
        t = np.zeros((4, 4))
        t[0, 1] = -1
        with pytest.raises(ValueError):
            topo.classify_bytes(t)


class TestNodeGroups:
    def test_groups_cover_all_gpus(self, topo):
        groups = topo.node_groups()
        flat = np.concatenate(groups)
        assert sorted(flat.tolist()) == list(range(4))

    def test_group_sizes(self, topo):
        assert all(g.size == 2 for g in topo.node_groups())


class TestGraph:
    def test_leaf_count(self, topo):
        gpus = [n for n, d in topo.graph.nodes(data=True) if d.get("kind") == "gpu"]
        assert len(gpus) == 4

    def test_intra_path_length(self, topo):
        # same node: gpu -> node switch -> gpu
        assert len(topo.hop_path(0, 1)) == 3

    def test_inter_path_length(self, topo):
        # cross node: gpu -> node -> fabric -> node -> gpu
        assert len(topo.hop_path(0, 3)) == 5
