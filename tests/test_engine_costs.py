"""Unit tests for repro.engine.costs and metrics."""

from __future__ import annotations

import pytest

from repro.cluster.traffic import TrafficLedger
from repro.config import ExecutionMode
from repro.engine.costs import CostModel
from repro.engine.metrics import OpBreakdown, RunResult


@pytest.fixture
def cost(small_model) -> CostModel:
    return CostModel(small_model)


class TestCostModel:
    def test_attention_grows_with_context(self, cost):
        assert cost.attention_flops(100) > cost.attention_flops(10)

    def test_ffn_flops_formula(self, small_model, cost):
        d, f = small_model.d_model, small_model.d_ff
        assert cost.ffn_flops() == 4.0 * d * f

    def test_gating_flops(self, small_model, cost):
        assert cost.gating_flops() == 2.0 * small_model.d_model * small_model.num_experts

    def test_times_linear_in_tokens(self, cost):
        assert cost.ffn_time(10) == pytest.approx(10 * cost.ffn_time(1))
        assert cost.attention_time(6, 50) == pytest.approx(6 * cost.attention_time(1, 50))

    def test_topk_scales_ffn(self, cost):
        assert cost.ffn_time(5, k=2) == pytest.approx(2 * cost.ffn_time(5, k=1))

    def test_zero_tokens_free(self, cost):
        assert cost.attention_time(0, 100) == 0.0
        assert cost.ffn_time(0) == 0.0
        assert cost.gating_time(0) == 0.0

    def test_token_bytes(self, small_model, cost):
        assert cost.token_bytes(2) == small_model.d_model * 2

    def test_rejects_negative(self, cost):
        with pytest.raises(ValueError):
            cost.ffn_time(-1)
        with pytest.raises(ValueError):
            cost.attention_time(-1, 10)

    def test_rejects_bad_efficiency(self, small_model):
        with pytest.raises(ValueError):
            CostModel(small_model, ffn_efficiency=0.0)
        with pytest.raises(ValueError):
            CostModel(small_model, attention_efficiency=1.5)


class TestOpBreakdown:
    def test_totals(self):
        b = OpBreakdown(attention_s=1.0, gating_s=0.5, expert_ffn_s=2.0, alltoall_s=3.0, allgather_s=0.5)
        assert b.compute_s == 3.5
        assert b.comm_s == 3.5
        assert b.total_s == 7.0

    def test_fraction(self):
        b = OpBreakdown(alltoall_s=3.0, expert_ffn_s=1.0)
        assert b.fraction("alltoall_s") == pytest.approx(0.75)

    def test_empty_fraction(self):
        assert OpBreakdown().fraction("alltoall_s") == 0.0

    def test_as_dict_keys(self):
        assert set(OpBreakdown().as_dict()) == {
            "attention_s",
            "gating_s",
            "expert_ffn_s",
            "alltoall_s",
            "allgather_s",
        }


class TestRunResult:
    def _make(self, total_s: float, tokens: int = 100) -> RunResult:
        return RunResult(
            mode=ExecutionMode.VANILLA,
            breakdown=OpBreakdown(expert_ffn_s=total_s),
            ledger=TrafficLedger(),
            generated_tokens=tokens,
            iterations=10,
            gpu_stay_fraction=0.5,
            node_stay_fraction=0.7,
        )

    def test_throughput(self):
        r = self._make(2.0, 100)
        assert r.throughput_tokens_per_s == pytest.approx(50.0)

    def test_speedup(self):
        fast, slow = self._make(1.0), self._make(2.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_requires_same_workload(self):
        a, b = self._make(1.0, 100), self._make(1.0, 200)
        with pytest.raises(ValueError):
            a.speedup_over(b)

    def test_comm_reduction(self):
        a = RunResult(
            ExecutionMode.EXFLOW,
            OpBreakdown(alltoall_s=1.0),
            TrafficLedger(),
            10,
            1,
            0.5,
            0.5,
        )
        b = RunResult(
            ExecutionMode.VANILLA,
            OpBreakdown(alltoall_s=4.0),
            TrafficLedger(),
            10,
            1,
            0.5,
            0.5,
        )
        assert a.comm_reduction_over(b) == pytest.approx(0.75)
