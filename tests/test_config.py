"""Unit tests for repro.config."""

from __future__ import annotations


import pytest

from repro.config import (
    PAPER_MODELS,
    ClusterConfig,
    ExecutionMode,
    GatingKind,
    InferenceConfig,
    LinkSpec,
    ModelConfig,
    geometric_mean,
    paper_model,
    scaled_proxy,
    validate_deployment,
    wilkes3,
)


class TestGatingKind:
    def test_top1_k(self):
        assert GatingKind.TOP1.k == 1

    def test_top2_k(self):
        assert GatingKind.TOP2.k == 2


class TestExecutionMode:
    def test_vanilla_has_no_coherence(self):
        assert not ExecutionMode.VANILLA.uses_context_coherence

    def test_coherent_modes(self):
        assert ExecutionMode.CONTEXT_COHERENT.uses_context_coherence
        assert ExecutionMode.EXFLOW.uses_context_coherence

    def test_only_exflow_uses_affinity(self):
        assert ExecutionMode.EXFLOW.uses_affinity_placement
        assert not ExecutionMode.CONTEXT_COHERENT.uses_affinity_placement
        assert not ExecutionMode.VANILLA.uses_affinity_placement


class TestModelConfig:
    def test_d_ff_default_mult(self, small_model):
        assert small_model.d_ff == 4 * small_model.d_model

    def test_moe_every_block_by_default(self, small_model):
        assert small_model.num_moe_layers == small_model.num_layers
        assert small_model.moe_layer_indices == tuple(range(small_model.num_layers))

    def test_moe_every_two(self):
        cfg = ModelConfig("m", num_layers=6, num_experts=4, d_model=32, moe_every=2)
        assert cfg.num_moe_layers == 3
        assert cfg.moe_layer_indices == (1, 3, 5)

    def test_expert_params(self):
        cfg = ModelConfig("m", num_layers=2, num_experts=4, d_model=16)
        assert cfg.expert_params == 2 * 16 * 64
        assert cfg.total_expert_params == cfg.expert_params * 4 * 2

    def test_expert_bytes_fp16(self):
        cfg = ModelConfig("m", num_layers=2, num_experts=4, d_model=16)
        assert cfg.expert_bytes() == cfg.expert_params * 2

    def test_with_experts(self, small_model):
        bigger = small_model.with_experts(16)
        assert bigger.num_experts == 16
        assert bigger.num_layers == small_model.num_layers

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_layers", 0),
            ("num_experts", 0),
            ("d_model", 0),
            ("moe_every", 0),
            ("capacity_factor", -1.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        kwargs = dict(name="m", num_layers=2, num_experts=4, d_model=32)
        kwargs[field] = value
        with pytest.raises(ValueError):
            ModelConfig(**kwargs)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig("m", num_layers=2, num_experts=4, d_model=30, num_heads=4)


class TestLinkSpec:
    def test_transfer_time_alpha_beta(self):
        link = LinkSpec("l", latency_s=1e-6, bandwidth_Bps=1e9)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bytes_free(self):
        link = LinkSpec("l", latency_s=1e-6, bandwidth_Bps=1e9)
        assert link.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        link = LinkSpec("l", latency_s=0.0, bandwidth_Bps=1e9)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            LinkSpec("l", latency_s=-1.0, bandwidth_Bps=1e9)
        with pytest.raises(ValueError):
            LinkSpec("l", latency_s=0.0, bandwidth_Bps=0.0)


class TestClusterConfig:
    def test_num_gpus(self):
        assert ClusterConfig(num_nodes=3, gpus_per_node=4).num_gpus == 12

    def test_node_of(self):
        c = ClusterConfig(num_nodes=2, gpus_per_node=4)
        assert c.node_of(0) == 0
        assert c.node_of(3) == 0
        assert c.node_of(4) == 1

    def test_node_of_out_of_range(self):
        c = ClusterConfig(num_nodes=2, gpus_per_node=2)
        with pytest.raises(IndexError):
            c.node_of(4)

    def test_gpus_of_node(self):
        c = ClusterConfig(num_nodes=2, gpus_per_node=3)
        assert list(c.gpus_of_node(1)) == [3, 4, 5]

    def test_link_tiers(self):
        c = ClusterConfig(num_nodes=2, gpus_per_node=2)
        assert c.link_between(0, 0) is c.local_link
        assert c.link_between(0, 1) is c.intra_link
        assert c.link_between(0, 2) is c.inter_link

    def test_experts_per_gpu(self):
        c = ClusterConfig(num_nodes=2, gpus_per_node=2)
        assert c.experts_per_gpu(8) == 2
        assert c.experts_per_node(8) == 4

    def test_experts_per_gpu_indivisible(self):
        c = ClusterConfig(num_nodes=2, gpus_per_node=2)
        with pytest.raises(ValueError):
            c.experts_per_gpu(6)

    def test_gpu_pairs_count(self):
        c = ClusterConfig(num_nodes=1, gpus_per_node=3)
        assert len(list(c.gpu_pairs())) == 6


class TestInferenceConfig:
    def test_totals(self):
        cfg = InferenceConfig(requests_per_gpu=2, prompt_len=10, generate_len=5)
        assert cfg.total_requests(4) == 8
        assert cfg.total_context_len() == 15

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            InferenceConfig(dtype_bytes=3)

    @pytest.mark.parametrize("field", ["requests_per_gpu", "prompt_len", "generate_len"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            InferenceConfig(**{field: 0})


class TestPaperPresets:
    def test_seven_variants(self):
        assert len(PAPER_MODELS) == 7

    def test_350m_family(self):
        for e in (8, 16, 32, 64):
            m = paper_model(f"gpt-m-350m-e{e}")
            assert m.num_experts == e
            assert m.num_layers == 24
            assert m.d_model == 1024

    def test_deep_variants(self):
        assert paper_model("gpt-m-470m-e32").num_layers == 32
        assert paper_model("gpt-m-590m-e32").num_layers == 40

    def test_xl(self):
        xl = paper_model("gpt-xl-1.3b-e16")
        assert xl.d_model == 2048
        assert xl.num_experts == 16

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            paper_model("nope")

    def test_wilkes3_shape(self):
        c = wilkes3(4)
        assert c.num_nodes == 4
        assert c.gpus_per_node == 4

    def test_scaled_proxy_keeps_structure(self):
        m = scaled_proxy(paper_model("gpt-m-350m-e32"), d_model=64)
        assert m.num_experts == 32
        assert m.num_layers == 24
        assert m.d_model == 64
        assert m.d_model % m.num_heads == 0

    def test_validate_deployment_ok(self):
        validate_deployment(paper_model("gpt-m-350m-e32"), wilkes3(4))

    def test_validate_deployment_indivisible(self):
        with pytest.raises(ValueError):
            validate_deployment(paper_model("gpt-m-350m-e8"), wilkes3(4))


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
