"""Unit tests for repro.engine.executor."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import ExecutionMode, GatingKind, InferenceConfig
from repro.core.placement.vanilla import vanilla_placement
from repro.engine.executor import _traffic_from_moves, simulate_inference
from repro.engine.workload import DecodeWorkload, make_decode_workload


@pytest.fixture
def baseline_placement(small_model, small_cluster):
    return vanilla_placement(
        small_model.num_moe_layers, small_model.num_experts, small_cluster.num_gpus
    )


@pytest.fixture
def workload(small_model, small_cluster, small_infer):
    return make_decode_workload(small_model, small_cluster, small_infer)


def run(small_model, small_cluster, small_infer, placement, workload, mode):
    cfg = dataclasses.replace(small_infer, mode=mode)
    return simulate_inference(small_model, small_cluster, cfg, placement, workload)


class TestTrafficFromMoves:
    def test_counts_and_diagonal(self):
        src = np.array([0, 0, 1, 2])
        dst = np.array([1, 0, 1, 0])
        t = _traffic_from_moves(src, dst, 3, 10.0)
        assert t[0, 1] == 10.0
        assert t[0, 0] == 0.0  # diagonal zeroed (local)
        assert t[1, 1] == 0.0
        assert t[2, 0] == 10.0
        assert t.sum() == 20.0


class TestModes:
    def test_vanilla_has_two_alltoalls_per_layer(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        res = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.VANILLA)
        expected = 2 * small_model.num_moe_layers * workload.iterations
        assert res.ledger.count_by_op["alltoall"] == expected
        assert "allgather" not in res.ledger.count_by_op

    def test_coherent_has_one_alltoall_per_layer(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        res = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.CONTEXT_COHERENT)
        expected = small_model.num_moe_layers * workload.iterations
        assert res.ledger.count_by_op["alltoall"] == expected
        # 1 initial context gather + one per iteration
        assert res.ledger.count_by_op["allgather"] == workload.iterations + 1

    def test_coherent_cheaper_comm(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        van = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.VANILLA)
        coh = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.CONTEXT_COHERENT)
        assert coh.breakdown.comm_s < van.breakdown.comm_s
        assert coh.breakdown.alltoall_s < van.breakdown.alltoall_s

    def test_identical_compute_tokens(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        """Both modes process the same tokens; expert FFN time is identical
        (same placement -> same per-GPU loads)."""
        van = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.VANILLA)
        coh = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.CONTEXT_COHERENT)
        assert van.breakdown.expert_ffn_s == pytest.approx(coh.breakdown.expert_ffn_s)
        assert van.generated_tokens == coh.generated_tokens

    def test_affinity_placement_reduces_alltoall(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        from repro.core.placement.staged import staged_placement

        aff = staged_placement(workload.flat_trace(), small_cluster)
        base = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                   ExecutionMode.CONTEXT_COHERENT)
        opt = run(small_model, small_cluster, small_infer, aff, workload,
                  ExecutionMode.EXFLOW)
        assert opt.breakdown.alltoall_s < base.breakdown.alltoall_s
        assert opt.gpu_stay_fraction > base.gpu_stay_fraction

    def test_locality_fractions_bounded(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        res = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.EXFLOW)
        assert 0.0 <= res.gpu_stay_fraction <= 1.0
        assert res.node_stay_fraction >= res.gpu_stay_fraction

    def test_generated_token_count(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        res = run(small_model, small_cluster, small_infer, baseline_placement, workload,
                  ExecutionMode.VANILLA)
        assert res.generated_tokens == workload.iterations * workload.num_requests
        assert res.iterations == workload.iterations


class TestTop2:
    def test_top2_increases_traffic(self, small_cluster, small_infer, small_model):
        top2_model = dataclasses.replace(small_model, gating=GatingKind.TOP2)
        placement = vanilla_placement(
            top2_model.num_moe_layers, top2_model.num_experts, small_cluster.num_gpus
        )
        w1 = make_decode_workload(small_model, small_cluster, small_infer)
        w2 = DecodeWorkload(
            w1.paths, w1.home_gpu, w1.num_experts, w1.prompt_len, secondary_paths=w1.paths
        )
        r1 = run(small_model, small_cluster, small_infer, placement, w1,
                 ExecutionMode.VANILLA)
        r2 = run(top2_model, small_cluster, small_infer, placement, w2,
                 ExecutionMode.VANILLA)
        assert r2.ledger.total_bytes > r1.ledger.total_bytes
        assert r2.breakdown.expert_ffn_s > r1.breakdown.expert_ffn_s


class TestValidation:
    def test_placement_model_mismatch(self, small_model, small_cluster, small_infer, workload):
        bad = vanilla_placement(small_model.num_moe_layers, 16, small_cluster.num_gpus)
        with pytest.raises(ValueError):
            simulate_inference(small_model, small_cluster, small_infer, bad, workload)

    def test_placement_cluster_mismatch(self, small_model, small_cluster, small_infer, workload):
        bad = vanilla_placement(small_model.num_moe_layers, small_model.num_experts, 8)
        with pytest.raises(ValueError):
            simulate_inference(small_model, small_cluster, small_infer, bad, workload)

    def test_workload_layer_mismatch(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        bad = DecodeWorkload(
            workload.paths[:, :, :2], workload.home_gpu, workload.num_experts, 8
        )
        with pytest.raises(ValueError):
            simulate_inference(
                small_model, small_cluster, small_infer, baseline_placement, bad
            )

    def test_home_gpu_out_of_range(
        self, small_model, small_cluster, small_infer, baseline_placement, workload
    ):
        bad = DecodeWorkload(
            workload.paths, workload.home_gpu + 10, workload.num_experts, 8
        )
        with pytest.raises(ValueError):
            simulate_inference(
                small_model, small_cluster, small_infer, baseline_placement, bad
            )


class TestSingleGpu:
    def test_no_communication(self, small_model):
        from repro.config import ClusterConfig

        cluster = ClusterConfig(num_nodes=1, gpus_per_node=1)
        infer = InferenceConfig(requests_per_gpu=2, prompt_len=4, generate_len=2)
        placement = vanilla_placement(small_model.num_moe_layers, small_model.num_experts, 1)
        workload = make_decode_workload(small_model, cluster, infer)
        res = simulate_inference(small_model, cluster, infer, placement, workload)
        assert res.breakdown.alltoall_s == 0.0
        assert res.gpu_stay_fraction == 1.0
