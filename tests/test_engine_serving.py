"""Property tests for the request-level serving layer."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ExecutionMode, InferenceConfig, ServingConfig
from repro.engine.metrics import LatencyStats
from repro.engine.serving import (
    Request,
    bursty_arrivals,
    engine_step_time,
    make_arrivals,
    poisson_arrivals,
    simulate_cluster_serving,
    simulate_serving,
)


@pytest.fixture
def cfg() -> ServingConfig:
    return ServingConfig(
        arrival_rate_rps=100.0, num_requests=200, generate_len=8, max_batch_requests=16
    )


def constant_step(seconds: float):
    return lambda batch: seconds


class TestLatencyStats:
    def test_empty_sample(self):
        s = LatencyStats.from_samples([])
        assert s.count == 0 and s.mean_s == 0.0 and s.p99_s == 0.0

    def test_percentiles_ordered(self, rng):
        s = LatencyStats.from_samples(rng.exponential(1.0, size=500))
        assert s.p50_s <= s.p95_s <= s.p99_s <= s.max_s
        assert s.count == 500

    def test_constant_sample(self):
        s = LatencyStats.from_samples([2.0] * 10)
        assert s.p50_s == s.p95_s == s.p99_s == s.max_s == s.mean_s == 2.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([1.0, -0.5])


class TestArrivals:
    def test_poisson_shape_and_order(self, cfg):
        reqs = poisson_arrivals(cfg)
        assert len(reqs) == cfg.num_requests
        times = [q.arrival_s for q in reqs]
        assert times == sorted(times)
        assert all(q.generate_len == cfg.generate_len for q in reqs)

    def test_poisson_deterministic(self, cfg):
        a = poisson_arrivals(cfg)
        b = poisson_arrivals(cfg)
        assert a == b

    def test_poisson_mean_rate(self):
        cfg = ServingConfig(arrival_rate_rps=50.0, num_requests=4000)
        reqs = poisson_arrivals(cfg)
        measured = len(reqs) / reqs[-1].arrival_s
        assert 0.8 * 50.0 < measured < 1.25 * 50.0

    def test_bursty_mean_rate_preserved(self):
        cfg = ServingConfig(
            arrival="bursty", arrival_rate_rps=50.0, num_requests=4000,
            burst_factor=5.0, burst_fraction=0.3,
        )
        reqs = bursty_arrivals(cfg)
        measured = len(reqs) / reqs[-1].arrival_s
        # the MMPP calm rate is solved to preserve the long-run mean
        assert 0.7 * 50.0 < measured < 1.4 * 50.0

    @pytest.mark.parametrize(
        "shape",
        [
            # boundary: burst state at the base rate (denom -> (1-p)/rate)
            {"burst_factor": 1.0, "burst_fraction": 0.5, "burst_persistence": 0.5},
            # extreme rate multiplier with near-permanent dwell
            {"burst_factor": 100.0, "burst_fraction": 0.25, "burst_persistence": 0.99},
            # almost-always-bursting regime
            {"burst_factor": 8.0, "burst_fraction": 0.9, "burst_persistence": 0.95},
            # boundary: zero burst fraction degenerates to pure Poisson
            {"burst_factor": 50.0, "burst_fraction": 0.0, "burst_persistence": 0.0},
            # memoryless state switching (persistence 0)
            {"burst_factor": 4.0, "burst_fraction": 0.5, "burst_persistence": 0.0},
            # pathological multiplier
            {"burst_factor": 1000.0, "burst_fraction": 0.7, "burst_persistence": 0.8},
        ],
    )
    def test_bursty_long_run_rate_preserved(self, shape):
        """Property: the MMPP calm-rate solve must keep the long-run mean
        arrival rate at cfg.arrival_rate_rps for *every* feasible burst
        shape, including the boundary cases.  Averaged over seeds so the
        tolerance can be tight without flaking on one heavy-tailed draw."""
        rate = 50.0
        ratios = []
        for seed in range(8):
            cfg = ServingConfig(
                arrival="bursty",
                arrival_rate_rps=rate,
                num_requests=8000,
                seed=seed,
                **shape,
            )
            reqs = bursty_arrivals(cfg)
            ratios.append(len(reqs) / reqs[-1].arrival_s / rate)
        assert 0.95 < np.mean(ratios) < 1.05

    def test_bursty_gap_mean_matches_analytic(self):
        """The per-gap expectation itself is exact: E[gap] = 1/rate."""
        cfg = ServingConfig(
            arrival="bursty",
            arrival_rate_rps=200.0,
            num_requests=30000,
            burst_factor=6.0,
            burst_fraction=0.4,
            burst_persistence=0.9,
            seed=1,
        )
        gaps = np.diff([0.0, *(q.arrival_s for q in bursty_arrivals(cfg))])
        assert gaps.mean() == pytest.approx(1.0 / 200.0, rel=0.05)

    def test_bursty_has_fatter_gap_tail(self):
        base = ServingConfig(arrival_rate_rps=100.0, num_requests=3000, seed=5)
        burst = dataclasses.replace(
            base, arrival="bursty", burst_factor=8.0, burst_fraction=0.3
        )
        def gaps(reqs):
            return np.diff([q.arrival_s for q in reqs])

        g_pois, g_burst = gaps(make_arrivals(base)), gaps(make_arrivals(burst))
        # same mean scale, but modulated arrivals have higher variance
        assert g_burst.var() > g_pois.var()

    def test_dispatch_by_name(self, cfg):
        assert make_arrivals(cfg) == poisson_arrivals(cfg)
        bc = dataclasses.replace(cfg, arrival="bursty")
        assert make_arrivals(bc) == bursty_arrivals(bc)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(0, -1.0, 8, 8)
        with pytest.raises(ValueError):
            Request(0, 0.0, 0, 8)


class TestArrivalDeterminism:
    """Property: arrivals are a pure function of ServingConfig.

    The whole benchmark methodology leans on this — the same seed must
    yield byte-identical arrival sequences for every process family, so
    static/online (and fleet) arms serve literally the same traffic.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        arrival=st.sampled_from(["poisson", "bursty"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=0.5, max_value=500.0),
        n=st.integers(min_value=1, max_value=150),
        burst_factor=st.floats(min_value=1.0, max_value=50.0),
        burst_fraction=st.floats(min_value=0.0, max_value=0.6),
    )
    def test_same_seed_same_sequence(
        self, arrival, seed, rate, n, burst_factor, burst_fraction
    ):
        cfg = ServingConfig(
            arrival=arrival,
            arrival_rate_rps=rate,
            num_requests=n,
            burst_factor=burst_factor,
            burst_fraction=burst_fraction,
            seed=seed,
        )
        a = make_arrivals(cfg)
        b = make_arrivals(cfg)
        assert a == b  # Request is frozen: equality is field-for-field

    @settings(max_examples=40, deadline=None)
    @given(
        arrival=st.sampled_from(["poisson", "bursty"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        rate=st.floats(min_value=0.5, max_value=500.0),
        n=st.integers(min_value=2, max_value=150),
    )
    def test_times_strictly_increasing_ids_sequential(self, arrival, seed, rate, n):
        cfg = ServingConfig(
            arrival=arrival, arrival_rate_rps=rate, num_requests=n, seed=seed
        )
        reqs = make_arrivals(cfg)
        times = np.array([q.arrival_s for q in reqs])
        assert (np.diff(times) > 0).all()
        assert [q.req_id for q in reqs] == list(range(n))

    def test_different_seeds_differ(self):
        base = ServingConfig(arrival_rate_rps=100.0, num_requests=50, seed=0)
        other = dataclasses.replace(base, seed=1)
        assert make_arrivals(base) != make_arrivals(other)


class TestServingConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival": "uniform"},
            {"arrival_rate_rps": 0.0},
            {"num_requests": 0},
            {"burst_factor": 0.5},
            {"burst_fraction": 1.0},
            {"burst_persistence": 1.0},
            {"max_batch_requests": 0},
            {"prompt_len": 0},
            {"generate_len": -1},
            # infeasible two-state chain: no calm-state stay probability
            # can realize this burst fraction at this persistence
            {"burst_fraction": 0.95, "burst_persistence": 0.0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


class TestContinuousBatching:
    def test_all_requests_complete(self, cfg):
        res = simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 16)
        assert len(res.completed) == cfg.num_requests
        assert res.generated_tokens == cfg.num_requests * cfg.generate_len

    def test_empty_input(self):
        res = simulate_serving([], constant_step(1e-3))
        assert res.completed == () and res.decode_steps == 0

    def test_zero_makespan_throughput_is_zero(self):
        """Regression: zero-span results used to report inf throughput."""
        res = simulate_serving([], constant_step(1e-3))
        assert res.makespan_s == 0.0
        assert res.throughput_rps == 0.0
        assert res.throughput_tokens_per_s == 0.0
        assert np.isfinite(res.throughput_rps)

    def test_unloaded_latency_is_pure_service(self):
        req = Request(0, 1.0, 8, 10)
        res = simulate_serving([req], constant_step(2e-3), 4)
        c = res.completed[0]
        assert c.queue_s == 0.0
        assert c.latency_s == pytest.approx(10 * 2e-3)

    def test_latency_lower_bound(self, cfg):
        """No request can finish faster than generate_len decode steps."""
        res = simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 16)
        for c in res.completed:
            assert c.latency_s >= cfg.generate_len * 1e-3 - 1e-12
            assert c.queue_s >= 0.0

    def test_percentiles_ordered(self, cfg):
        res = simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 16)
        s = res.latency
        assert s.p50_s <= s.p95_s <= s.p99_s <= s.max_s

    def test_batching_beats_serial(self, cfg):
        """With a flat step cost, continuous batching must raise throughput."""
        reqs = poisson_arrivals(cfg)
        batched = simulate_serving(reqs, constant_step(1e-3), 16)
        serial = simulate_serving(reqs, constant_step(1e-3), 1)
        assert batched.throughput_tokens_per_s > serial.throughput_tokens_per_s
        assert batched.latency.mean_s < serial.latency.mean_s

    def test_more_load_more_latency(self):
        lo = ServingConfig(arrival_rate_rps=20.0, num_requests=200, generate_len=8)
        hi = dataclasses.replace(lo, arrival_rate_rps=2000.0)
        res_lo = simulate_serving(poisson_arrivals(lo), constant_step(1e-3), 8)
        res_hi = simulate_serving(poisson_arrivals(hi), constant_step(1e-3), 8)
        assert res_hi.latency.mean_s >= res_lo.latency.mean_s
        assert res_hi.queue.mean_s >= res_lo.queue.mean_s

    def test_batch_cap_respected(self, cfg):
        res = simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 4)
        assert res.mean_batch_size <= 4.0 + 1e-9

    def test_mean_batch_and_utilization_bounds(self, cfg):
        res = simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 16)
        assert 0.0 < res.mean_batch_size <= 16.0
        assert 0.0 < res.utilization <= 1.0

    def test_rejects_bad_step_time(self, cfg):
        with pytest.raises(ValueError):
            simulate_serving(poisson_arrivals(cfg), constant_step(0.0), 16)
        with pytest.raises(ValueError):
            simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 0)

    def test_deterministic(self, cfg):
        a = simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 16)
        b = simulate_serving(poisson_arrivals(cfg), constant_step(1e-3), 16)
        assert a.latency == b.latency and a.makespan_s == b.makespan_s


class TestEngineCalibration:
    @pytest.fixture
    def tiny(self, small_model, small_cluster):
        return small_model, small_cluster

    def test_step_time_positive_and_monotone_probes(self, tiny):
        model, cluster = tiny
        step = engine_step_time(
            model, cluster, mode=ExecutionMode.VANILLA,
            probe_requests_per_gpu=(1, 4), calibration_generate_len=2,
        )
        assert step(1) > 0
        # more tokens per step can never be cheaper under lockstep maxima
        assert step(4 * cluster.num_gpus) >= step(cluster.num_gpus)

    def test_interpolates_between_probes(self, tiny):
        model, cluster = tiny
        step = engine_step_time(
            model, cluster, mode=ExecutionMode.VANILLA,
            probe_requests_per_gpu=(1, 4), calibration_generate_len=2,
        )
        lo, hi = step(cluster.num_gpus), step(4 * cluster.num_gpus)
        mid = step(2 * cluster.num_gpus)
        assert min(lo, hi) - 1e-15 <= mid <= max(lo, hi) + 1e-15

    def test_rejects_bad_probes(self, tiny):
        model, cluster = tiny
        with pytest.raises(ValueError):
            engine_step_time(model, cluster, probe_requests_per_gpu=(0,))
        with pytest.raises(ValueError):
            engine_step_time(model, cluster, probe_requests_per_gpu=(-999,))
        with pytest.raises(ValueError):
            engine_step_time(model, cluster, probe_requests_per_gpu=())

    def test_probe_streams_disjoint_from_placement_profile(self, tiny):
        """Audit: the probe workloads (seed + 1000 + b) must never replay
        the placement-profile stream (seed + 1) or the routing-build stream
        (seed) — otherwise the smallest probe would be scored on the very
        token paths the affinity placement was fit to.  Probes are
        validated >= 1, so the offsets are disjoint for every b; this pins
        the contract across the whole admissible probe range."""
        seed = 0
        reserved = {seed, seed + 1}
        for b in range(1, 4097):
            assert seed + 1000 + b not in reserved

        # behavioural check for the smallest probe: its workload draws a
        # different token stream than the profile the placement was fit to
        model, cluster = tiny
        from repro.engine.workload import make_decode_workload
        from repro.trace.markov import MarkovRoutingModel

        routing = MarkovRoutingModel.with_affinity(
            model.num_experts, model.num_moe_layers, 0.85,
            rng=np.random.default_rng(seed),
        )
        profile = routing.sample(2048, np.random.default_rng(seed + 1))
        infer = InferenceConfig(requests_per_gpu=1, prompt_len=16, generate_len=8)
        probe_wl = make_decode_workload(
            model, cluster, infer, routing=routing,
            rng=np.random.default_rng(seed + 1000 + 1),
        )
        flat = probe_wl.paths.reshape(-1, model.num_moe_layers)
        assert not np.array_equal(flat, profile.paths[: len(flat)])

    def test_compute_floor_dominated(self, tiny):
        """Calibrated step time must exceed the single-GPU compute floor
        divided by the GPU count (communication and imbalance only add)."""
        from repro.engine.costs import CostModel

        model, cluster = tiny
        step = engine_step_time(
            model, cluster, mode=ExecutionMode.VANILLA,
            probe_requests_per_gpu=(2,), calibration_generate_len=2, prompt_len=16,
        )
        cost = CostModel(model, gpu_flops=cluster.gpu_flops)
        floor = cost.decode_step_time(2, 16) / cluster.num_gpus
        assert step(2 * cluster.num_gpus) > floor


class TestClusterServing:
    def test_end_to_end_tiny(self, small_model, small_cluster):
        serving = ServingConfig(
            arrival_rate_rps=500.0, num_requests=40, generate_len=4,
            max_batch_requests=8, prompt_len=8, seed=3,
        )
        res = simulate_cluster_serving(
            small_model, small_cluster, serving, mode=ExecutionMode.EXFLOW
        )
        assert len(res.completed) == 40
        assert res.latency.p50_s <= res.latency.p99_s
        assert res.throughput_tokens_per_s > 0

    def test_deterministic_given_seed(self, small_model, small_cluster):
        serving = ServingConfig(
            arrival="bursty", arrival_rate_rps=300.0, num_requests=30,
            generate_len=4, max_batch_requests=8, prompt_len=8, seed=9,
        )
        a = simulate_cluster_serving(small_model, small_cluster, serving)
        b = simulate_cluster_serving(small_model, small_cluster, serving)
        assert a.latency == b.latency
        assert a.makespan_s == b.makespan_s
