"""Unit tests for repro.trace.datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.datasets import CORPUS_NAMES, TopicCorpus, make_corpus


class TestMakeCorpus:
    def test_all_names_construct(self):
        for name in CORPUS_NAMES:
            corpus = make_corpus(name, vocab_size=128, num_topics=8)
            assert corpus.name == name
            assert corpus.vocab_size == 128
            assert corpus.num_topics == 8

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_corpus("wikipedia")

    def test_shared_universe(self):
        """Same seed -> identical topic-word distributions across corpora."""
        pile = make_corpus("pile", vocab_size=128, num_topics=8, seed=5)
        yelp = make_corpus("yelp", vocab_size=128, num_topics=8, seed=5)
        assert np.array_equal(pile.topic_word, yelp.topic_word)

    def test_priors_differ_across_corpora(self):
        pile = make_corpus("pile", vocab_size=128, num_topics=8)
        yelp = make_corpus("yelp", vocab_size=128, num_topics=8)
        assert not np.allclose(pile.topic_prior, yelp.topic_prior)

    def test_yelp_is_concentrated(self):
        pile = make_corpus("pile", vocab_size=256, num_topics=16)
        yelp = make_corpus("yelp", vocab_size=256, num_topics=16)
        assert yelp.topic_prior.max() > pile.topic_prior.max()

    def test_priors_full_support(self):
        for name in CORPUS_NAMES:
            corpus = make_corpus(name, vocab_size=128, num_topics=8)
            assert (corpus.topic_prior > 0).all()

    def test_vocab_smaller_than_topics_rejected(self):
        with pytest.raises(ValueError):
            make_corpus("pile", vocab_size=4, num_topics=8)


class TestSampling:
    @pytest.fixture
    def corpus(self) -> TopicCorpus:
        return make_corpus("pile", vocab_size=128, num_topics=8)

    def test_shapes(self, corpus):
        docs, topics = corpus.sample_documents(5, 16, np.random.default_rng(0))
        assert docs.shape == (5, 16)
        assert topics.shape == (5,)
        assert docs.max() < 128

    def test_deterministic(self, corpus):
        a, _ = corpus.sample_documents(3, 8, np.random.default_rng(1))
        b, _ = corpus.sample_documents(3, 8, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_documents_reflect_topics(self, corpus):
        """Tokens of a doc should over-represent its topic's vocab slice."""
        docs, topics = corpus.sample_documents(50, 64, np.random.default_rng(2))
        slice_size = corpus.vocab_size // corpus.num_topics
        hits = 0
        for doc, topic in zip(docs, topics, strict=True):
            lo = topic * slice_size
            in_slice = ((doc >= lo) & (doc < lo + slice_size)).mean()
            hits += in_slice > 1.5 / corpus.num_topics
        assert hits > 40  # the vast majority of docs are topic-dominated

    def test_rejects_bad_args(self, corpus):
        with pytest.raises(ValueError):
            corpus.sample_documents(-1, 8)
        with pytest.raises(ValueError):
            corpus.sample_documents(1, 0)


class TestValidation:
    def test_rejects_non_stochastic_topic_word(self):
        with pytest.raises(ValueError):
            TopicCorpus("x", np.ones((2, 4)), np.array([0.5, 0.5]))

    def test_rejects_bad_prior(self):
        tw = np.full((2, 4), 0.25)
        with pytest.raises(ValueError):
            TopicCorpus("x", tw, np.array([0.9, 0.9]))
