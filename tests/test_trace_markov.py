"""Unit tests for repro.trace.markov."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.markov import MarkovRoutingModel, make_affinity_transitions


class TestTransitions:
    def test_row_stochastic(self):
        t = make_affinity_transitions(8, 4, affinity=0.7)
        assert t.shape == (3, 8, 8)
        assert np.allclose(t.sum(axis=2), 1.0)

    def test_zero_affinity_uniform(self):
        t = make_affinity_transitions(8, 3, affinity=0.0)
        assert np.allclose(t, 1.0 / 8)

    def test_full_affinity_concentrated(self):
        t = make_affinity_transitions(8, 3, affinity=1.0, successors=1)
        # each row is a one-hot permutation row
        assert np.allclose(t.max(axis=2), 1.0)
        # columns balanced: each expert is someone's successor exactly once
        assert np.allclose(t.sum(axis=1), 1.0)

    def test_successor_count_controls_spread(self):
        t1 = make_affinity_transitions(16, 2, affinity=1.0, successors=1)
        t4 = make_affinity_transitions(16, 2, affinity=1.0, successors=4)
        assert t1.max() > t4.max()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_affinity_transitions(8, 3, affinity=1.5)
        with pytest.raises(ValueError):
            make_affinity_transitions(8, 3, affinity=0.5, successors=0)
        with pytest.raises(ValueError):
            make_affinity_transitions(8, 1, affinity=0.5)


class TestMarkovModel:
    def test_sample_shape(self):
        model = MarkovRoutingModel.with_affinity(8, 5, 0.8)
        trace = model.sample(100)
        assert trace.num_tokens == 100
        assert trace.num_layers == 5
        assert trace.num_experts == 8

    def test_sample_deterministic(self):
        model = MarkovRoutingModel.with_affinity(8, 4, 0.8)
        a = model.sample(50, np.random.default_rng(3))
        b = model.sample(50, np.random.default_rng(3))
        assert np.array_equal(a.paths, b.paths)

    def test_empirical_matches_transitions(self):
        """Sampled conditional frequencies converge to the model."""
        model = MarkovRoutingModel.with_affinity(4, 2, 0.9, rng=np.random.default_rng(1))
        trace = model.sample(60000, np.random.default_rng(2))
        est = trace.conditional_matrix(0)
        assert np.abs(est - model.transitions[0]).max() < 0.03

    def test_prior_respected(self):
        prior = np.array([1.0, 0.0, 0.0, 0.0])
        t = make_affinity_transitions(4, 2, 0.0)
        model = MarkovRoutingModel(t, prior=prior)
        trace = model.sample(200, np.random.default_rng(0))
        assert (trace.paths[:, 0] == 0).all()

    def test_stationary_distribution(self):
        model = MarkovRoutingModel.with_affinity(4, 3, 0.5, rng=np.random.default_rng(5))
        d0 = model.stationary_distribution(0)
        d2 = model.stationary_distribution(2)
        assert d0.sum() == pytest.approx(1.0)
        assert d2.sum() == pytest.approx(1.0)

    def test_validation(self):
        bad = np.ones((2, 3, 3))  # rows sum to 3
        with pytest.raises(ValueError):
            MarkovRoutingModel(bad)
        with pytest.raises(ValueError):
            MarkovRoutingModel(np.ones((3, 3)) / 3)  # wrong ndim
        t = make_affinity_transitions(3, 2, 0.5)
        with pytest.raises(ValueError):
            MarkovRoutingModel(t, prior=np.array([0.5, 0.5]))  # wrong size

    def test_zero_tokens(self):
        model = MarkovRoutingModel.with_affinity(4, 3, 0.5)
        assert model.sample(0).num_tokens == 0

    def test_affinity_dial_orders_concentration(self):
        """Higher affinity -> more concentrated conditional matrices."""
        rng = np.random.default_rng(0)
        weak = MarkovRoutingModel.with_affinity(8, 3, 0.2, rng=np.random.default_rng(1))
        strong = MarkovRoutingModel.with_affinity(8, 3, 0.9, rng=np.random.default_rng(1))
        tw = weak.sample(5000, rng).conditional_matrix(0).max(axis=1).mean()
        ts = strong.sample(5000, rng).conditional_matrix(0).max(axis=1).mean()
        assert ts > tw
