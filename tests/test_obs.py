"""Unit tests for repro.obs: recorder windowing, trace validation,
self-profiling, the telemetry spec, and the CLI export/report paths.

Cross-engine telemetry equivalence lives in test_fleet_equivalence.py;
this module covers the observability layer's own contracts — window
doubling conserves totals, the span budget degrades gracefully, the
Chrome-trace validator rejects malformed documents, and profiler phase
fractions always sum to one.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import ClusterConfig, FleetConfig, ServingConfig, paper_model
from repro.engine.metrics import LATENCY_HIST_EDGES_S, LatencyStats
from repro.obs.profile import MEASURED_PHASES, PROFILE_PHASES, PhaseProfiler
from repro.obs.recorder import NullRecorder, TimelineRecorder
from repro.obs.trace import validate_chrome_trace
from repro.scenarios import Scenario, SimReport, TelemetrySpec, run

SMALL_CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=2)
SMALL_SERVING = ServingConfig(
    arrival_rate_rps=900.0,
    num_requests=24,
    generate_len=4,
    max_batch_requests=8,
    prompt_len=8,
    seed=0,
)


def drive(rec, n=100, dt=0.01, meta=None):
    """Feed a synthetic single-replica hook stream: n requests, one per dt."""
    rec.on_run_start(0.0, meta if meta is not None else {"num_gpus": 4.0, "gpu_hour_usd": 2.0})
    rec.on_replica_start(0.0, 0, 0, False, 0.0, 0.0)
    t = 0.0
    for i in range(n):
        t = i * dt
        rec.on_enqueue(t, 0, i)
        rec.on_admit(t + dt / 4, 0, [i], 0.0)
        rec.on_step_end(t + dt / 2, 0, dt / 4, 1)
        rec.on_complete(t + dt / 2, 0, i, t, t + dt / 4, 4)
    rec.on_run_end(t + dt)
    return rec


class TestNullRecorder:
    def test_all_hooks_are_noops(self):
        rec = NullRecorder()
        rec.on_run_start(0.0, {})
        rec.on_replica_start(0.0, 0, 0, True, 1.0, 0.0)
        rec.on_boot_ready(1.0, 0)
        rec.on_enqueue(1.0, 0, 7)
        rec.on_requeue(1.5, 0, 1)
        rec.on_shed(2.0, 8, None, "queue-full")
        rec.on_admit(2.0, 0, [7], 0.001)
        rec.on_step_end(2.1, 0, 0.1, 1)
        rec.on_complete(2.1, 0, 7, 1.0, 2.0, 4)
        rec.on_scale(2.5, "up", 9.0, 1, 2, 0.5)
        rec.on_drain(3.0, 0)
        rec.on_stop(3.5, 0)
        rec.on_run_end(4.0)


class TestTimelineRecorder:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"window_s": 0.0},
            {"window_s": -1.0},
            {"max_windows": 1},
            {"max_span_events": -1},
        ),
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            TimelineRecorder(**kwargs)

    def test_single_use(self):
        rec = drive(TimelineRecorder(), n=3)
        with pytest.raises(RuntimeError, match="single-use"):
            rec.on_run_start(0.0, {})

    def test_hooks_require_run_start(self):
        rec = TimelineRecorder()
        with pytest.raises(RuntimeError, match="on_run_start"):
            rec.on_enqueue(0.0, 0, 1)

    def test_replica_ids_must_be_dense(self):
        rec = TimelineRecorder()
        rec.on_run_start(0.0, {})
        with pytest.raises(ValueError, match="densely"):
            rec.on_replica_start(0.0, 3, 0, False, 0.0, 0.0)

    def test_auto_window_doubles_and_conserves_totals(self):
        max_windows = 8
        rec = drive(TimelineRecorder(max_windows=max_windows), n=500)
        tl = rec.timeline()
        # the window grew from its 2^-20 s seed to cover the 5 s horizon
        assert rec.window_s > 2.0**-20
        assert 0 < tl["num_windows"] <= 2 * max_windows + 1
        # doubling pair-merges closed windows: nothing is lost
        assert tl["totals"]["admitted"] == 500
        assert tl["totals"]["completed"] == 500
        assert sum(tl["windows"]["admitted"]) == 500
        assert sum(tl["windows"]["completed"]) == 500
        assert tl["windows"]["cum_completed"][-1] == 500

    def test_explicit_window_is_never_merged(self):
        rec = drive(TimelineRecorder(window_s=0.05), n=100, dt=0.01)
        tl = rec.timeline()
        assert tl["window_s"] == 0.05
        # boundaries sit on the fixed grid (last one is the run end)
        for k, rel in enumerate(tl["time_s"][:-1]):
            assert rel == pytest.approx(0.05 * (k + 1))
        assert sum(tl["windows"]["completed"]) == 100

    def test_latency_series(self):
        rec = drive(TimelineRecorder(window_s=0.05), n=100, dt=0.01)
        tl = rec.timeline()
        # every request completes dt/2 after arrival in the synthetic stream
        for mean, mx, c in zip(
            tl["windows"]["latency_mean_s"],
            tl["windows"]["latency_max_s"],
            tl["windows"]["completed"],
            strict=True,
        ):
            if c:
                assert mean == pytest.approx(0.005)
                assert mx == pytest.approx(0.005)

    def test_cost_series_accrues(self):
        rec = drive(TimelineRecorder(window_s=0.05), n=100, dt=0.01)
        costs = rec.timeline()["windows"]["cost_usd"]
        assert costs == sorted(costs)
        # 1 s of 4 gpus at 2 $/gpu-hour
        assert costs[-1] == pytest.approx(4.0 * 2.0 * 1.0 / 3600.0)

    def test_empty_meta_reports_zero_cost(self):
        rec = drive(TimelineRecorder(window_s=0.05), n=10, meta={})
        assert set(rec.timeline()["windows"]["cost_usd"]) == {0.0}

    def test_span_budget_degrades_gracefully(self):
        rec = drive(TimelineRecorder(max_span_events=10), n=50)
        assert rec.dropped_span_events > 0
        tl = rec.timeline()
        assert tl["totals"]["dropped_span_events"] == rec.dropped_span_events
        # timelines are unaffected by span exhaustion
        assert tl["totals"]["completed"] == 50

    def test_scale_events_survive_span_exhaustion(self):
        rec = TimelineRecorder(max_span_events=0)
        rec.on_run_start(0.0, {})
        rec.on_replica_start(0.0, 0, 0, False, 0.0, 0.0)
        rec.on_scale(0.5, "up", 9.0, 1, 2, 0.25)
        rec.on_run_end(1.0)
        doc = rec.to_chrome_trace()
        names = [e["name"] for e in doc["traceEvents"]]
        assert "scale-up" in names
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])

    def test_spans_disabled_still_exports_counters(self):
        rec = drive(TimelineRecorder(spans=False, window_s=0.05), n=20)
        assert rec.dropped_span_events == 0
        doc = rec.to_chrome_trace()
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "C" in phases and "M" in phases
        assert "X" not in phases and "b" not in phases
        assert validate_chrome_trace(doc) > 0

    def test_replica_rows_utilization_bounds(self):
        rec = drive(TimelineRecorder(), n=50)
        rows = rec.replica_rows()
        assert len(rows) == 1
        assert 0.0 <= rows[0]["utilization"] <= 1.0
        assert rows[0]["completed"] == 50

    def test_timeline_is_json_ready(self):
        rec = drive(TimelineRecorder(max_windows=4), n=30)
        tl = rec.timeline()
        assert json.loads(json.dumps(tl)) == tl


class TestTraceValidator:
    def good(self, **over):
        ev = {"name": "step", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": 2.0}
        ev.update(over)
        return ev

    def test_accepts_minimal_document(self):
        assert validate_chrome_trace({"traceEvents": [self.good()]}) == 1

    @pytest.mark.parametrize(
        "doc",
        (
            [],  # not an object
            {},  # no traceEvents
            {"traceEvents": []},  # empty
            {"traceEvents": ["nope"]},  # event not an object
        ),
    )
    def test_rejects_malformed_documents(self, doc):
        with pytest.raises(ValueError):
            validate_chrome_trace(doc)

    @pytest.mark.parametrize(
        "over",
        (
            {"ph": "Q"},  # unknown phase
            {"name": ""},  # missing name
            {"pid": "0"},  # non-int pid
            {"ts": -1.0},  # negative timestamp
            {"dur": -2.0},  # negative duration
            {"dur": None},  # X without dur
        ),
    )
    def test_rejects_malformed_events(self, over):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [self.good(**over)]})

    def test_rejects_unbalanced_async_pairs(self):
        b = self.good(ph="b", cat="request", id="1")
        del b["dur"]
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace({"traceEvents": [b]})

    def test_balanced_async_pairs_pass(self):
        b = {"name": "queue", "ph": "b", "cat": "request", "id": "1", "pid": 1, "tid": 0, "ts": 0}
        e = {**b, "ph": "e", "ts": 5}
        assert validate_chrome_trace({"traceEvents": [b, e]}) == 2

    def test_rejects_instant_without_scope(self):
        ev = {"name": "shed", "ph": "i", "pid": 0, "tid": 0, "ts": 0}
        with pytest.raises(ValueError, match="scope"):
            validate_chrome_trace({"traceEvents": [ev]})

    def test_rejects_counter_without_args(self):
        ev = {"name": "queued", "ph": "C", "pid": 0, "tid": 0, "ts": 0, "args": {}}
        with pytest.raises(ValueError, match="args"):
            validate_chrome_trace({"traceEvents": [ev]})


class TestPhaseProfiler:
    def test_fractions_sum_to_one(self):
        prof = PhaseProfiler()
        prof.run_start()
        for _ in range(1000):
            pass
        prof.run_end()
        prof.add("routing", 1e-9)
        p = prof.profile()
        assert p.total_s > 0.0
        assert set(p.phase_s) == set(PROFILE_PHASES)
        assert sum(p.fractions.values()) == pytest.approx(1.0)
        assert p.phase_s["bookkeeping"] >= 0.0

    def test_measured_overrun_clamps_bookkeeping(self):
        # clock granularity can make measured > bracketed total
        prof = PhaseProfiler()
        prof.run_start()
        prof.run_end()
        prof.add("routing", 5.0)
        p = prof.profile()
        assert p.total_s == pytest.approx(5.0)
        assert p.phase_s["bookkeeping"] == 0.0
        assert sum(p.fractions.values()) == pytest.approx(1.0)

    def test_zero_total_has_zero_fractions(self):
        p = PhaseProfiler().profile()
        assert p.total_s == 0.0
        assert set(p.fractions.values()) == {0.0}

    def test_unknown_phase_rejected(self):
        with pytest.raises(KeyError, match="unknown profile phase"):
            PhaseProfiler().add("gardening", 1.0)
        assert "routing" in MEASURED_PHASES

    def test_unbalanced_brackets_rejected(self):
        prof = PhaseProfiler()
        with pytest.raises(RuntimeError):
            prof.run_end()
        prof.run_start()
        with pytest.raises(RuntimeError):
            prof.run_start()

    def test_as_dict_round_trips_through_json(self):
        prof = PhaseProfiler()
        prof.run_start()
        prof.run_end()
        d = prof.profile().as_dict()
        assert json.loads(json.dumps(d)) == d


class TestLatencyHistogram:
    def test_counts_conserved(self):
        samples = [0.0005, 0.001, 0.0015, 0.3, 7.0, 9999.0]
        stats = LatencyStats.from_samples(samples)
        assert len(stats.histogram) == len(LATENCY_HIST_EDGES_S) + 1
        assert sum(stats.histogram) == stats.count == len(samples)
        assert sum(stats.histogram_dict().values()) == len(samples)

    def test_bucket_semantics(self):
        # bucket i is [edges[i-1], edges[i]): a sample exactly on an edge
        # belongs to the bucket above it
        hist = LatencyStats.from_samples([0.001]).histogram_dict()
        assert hist["<0.001s"] == 0
        assert hist["<0.002s"] == 1
        assert LatencyStats.from_samples([9999.0]).histogram_dict()["+inf"] == 1

    def test_empty_sample(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert sum(stats.histogram) == 0
        assert len(stats.histogram) == len(LATENCY_HIST_EDGES_S) + 1

    def test_pre_histogram_stats_yield_empty_dict(self):
        legacy = LatencyStats(count=3, mean_s=0.1, p50_s=0.1, p95_s=0.1, p99_s=0.1, max_s=0.1)
        assert legacy.histogram_dict() == {}

    def test_histograms_merge_by_addition(self):
        a = LatencyStats.from_samples([0.01, 0.3])
        b = LatencyStats.from_samples([0.01, 7.0])
        merged = [x + y for x, y in zip(a.histogram, b.histogram, strict=True)]
        both = LatencyStats.from_samples([0.01, 0.3, 0.01, 7.0])
        assert tuple(merged) == both.histogram


def _serving_scenario(**overrides) -> Scenario:
    fields = dict(
        name="t-obs-serving",
        model=paper_model("gpt-m-350m-e8"),
        cluster=SMALL_CLUSTER,
        serving=SMALL_SERVING,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestTelemetrySpec:
    @pytest.mark.parametrize(
        "kwargs",
        ({"window_s": 0.0}, {"max_windows": 1}, {"max_span_events": -1}),
    )
    def test_spec_validation(self, kwargs):
        with pytest.raises(ValueError, match="telemetry"):
            TelemetrySpec(**kwargs)

    def test_telemetry_needs_serving_or_fleet_kind(self):
        from repro.config import InferenceConfig

        with pytest.raises(ValueError, match="serving and fleet"):
            Scenario(
                name="t-batch",
                model=paper_model("gpt-m-350m-e8"),
                cluster=SMALL_CLUSTER,
                batch=InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=3),
                telemetry=TelemetrySpec(),
            )

    def test_profile_needs_fleet_section(self):
        with pytest.raises(ValueError, match="fleet"):
            _serving_scenario(telemetry=TelemetrySpec(profile=True))

    def test_round_trips_through_serde(self):
        s = _serving_scenario(telemetry=TelemetrySpec(window_s=0.25, max_windows=32))
        assert Scenario.from_dict(s.to_dict()) == s
        assert Scenario.from_json(s.to_json()) == s


class TestRunFacadeTelemetry:
    def test_serving_scenario_records_timeline(self):
        report = run(_serving_scenario(telemetry=TelemetrySpec()))
        tl = report.timeline
        assert tl is not None
        assert tl["totals"]["completed"] == report.completed
        assert tl["num_replicas"] == 1
        assert report.latency_hist
        assert sum(report.latency_hist.values()) == report.completed

    def test_fleet_scenario_records_timeline_and_profile(self):
        s = _serving_scenario(
            name="t-obs-fleet",
            fleet=FleetConfig(num_replicas=2, router="jsq"),
            telemetry=TelemetrySpec(profile=True),
        )
        report = run(s)
        assert report.timeline is not None
        assert report.timeline["num_replicas"] == 2
        assert report.extra["profile_total_s"] > 0.0
        fracs = [report.extra[f"profile_{p}_frac"] for p in PROFILE_PHASES]
        assert sum(fracs) == pytest.approx(1.0)

    def test_no_telemetry_means_no_timeline(self):
        report = run(_serving_scenario())
        assert report.timeline is None
        assert "profile_total_s" not in report.extra

    def test_recorder_rejected_for_batch_kind(self):
        from repro.config import InferenceConfig

        s = Scenario(
            name="t-batch",
            model=paper_model("gpt-m-350m-e8"),
            cluster=SMALL_CLUSTER,
            batch=InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=3),
        )
        with pytest.raises(ValueError, match="serving and fleet"):
            run(s, recorder=TimelineRecorder())

    def test_profiler_rejected_without_fleet(self):
        with pytest.raises(ValueError, match="fleet"):
            run(_serving_scenario(), profiler=PhaseProfiler())

    def test_report_round_trips_with_timeline(self):
        report = run(_serving_scenario(telemetry=TelemetrySpec()), keep_raw=False)
        clone = SimReport.from_json(json.dumps(report.to_dict()))
        assert clone == dataclasses.replace(report, raw=None)
        assert clone.timeline == report.timeline
        assert clone.latency_hist == report.latency_hist
        assert clone.is_finite()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            SimReport.from_dict({"scenario": "x", "kind": "serving", "bogus": 1})


class TestCli:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        _serving_scenario(telemetry=TelemetrySpec(window_s=0.05)).save(path)
        return path

    def test_run_exports_trace_and_metrics(self, tmp_path, spec_file, capsys):
        trace = tmp_path / "out.trace.json"
        metrics = tmp_path / "out.metrics.json"
        rc = self.run_cli(
            ["run", "--scenario", str(spec_file), "--trace", str(trace), "--metrics", str(metrics)]
        )
        assert rc == 0
        assert validate_chrome_trace(json.loads(trace.read_text())) > 0
        doc = json.loads(metrics.read_text())
        assert doc["scenario"] == "t-obs-serving"
        assert doc["kind"] == "serving"
        assert doc["metrics"]["totals"]["completed"] > 0

    def test_report_reads_metrics_doc(self, tmp_path, spec_file, capsys):
        metrics = tmp_path / "out.metrics.json"
        self.run_cli(["run", "--scenario", str(spec_file), "--metrics", str(metrics)])
        capsys.readouterr()
        assert self.run_cli(["report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "replica" in out

    def test_report_rejects_trace_files(self, tmp_path, spec_file, capsys):
        trace = tmp_path / "out.trace.json"
        self.run_cli(["run", "--scenario", str(spec_file), "--trace", str(trace)])
        assert self.run_cli(["report", str(trace)]) == 2

    def test_trace_rejected_for_batch_scenarios(self, tmp_path, capsys):
        from repro.config import InferenceConfig

        spec = tmp_path / "batch.json"
        Scenario(
            name="t-batch",
            model=paper_model("gpt-m-350m-e8"),
            cluster=SMALL_CLUSTER,
            batch=InferenceConfig(requests_per_gpu=2, prompt_len=8, generate_len=3),
        ).save(spec)
        rc = self.run_cli(["run", "--scenario", str(spec), "--trace", str(tmp_path / "t.json")])
        assert rc == 2
