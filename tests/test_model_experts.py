"""Unit tests for repro.model.experts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.experts import ExpertBank


@pytest.fixture
def bank() -> ExpertBank:
    return ExpertBank(num_experts=4, d_model=8, d_ff=16, rng=np.random.default_rng(0))


class TestExpertBank:
    def test_params_per_expert(self, bank):
        assert bank.params_per_expert == 8 * 16 * 2

    def test_forward_expert_shape(self, bank):
        out = bank.forward_expert(0, np.zeros((5, 8)))
        assert out.shape == (5, 8)

    def test_experts_differ(self, bank):
        x = np.random.default_rng(1).normal(size=(3, 8))
        assert not np.allclose(bank.forward_expert(0, x), bank.forward_expert(1, x))

    def test_forward_expert_out_of_range(self, bank):
        with pytest.raises(IndexError):
            bank.forward_expert(4, np.zeros((1, 8)))

    def test_routed_matches_per_expert(self, bank):
        """Grouped routed forward must equal naive per-token dispatch."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(20, 8))
        ids = rng.integers(0, 4, size=20)
        grouped = bank.forward_routed(x, ids)
        naive = np.stack([bank.forward_expert(int(e), x[t : t + 1])[0] for t, e in enumerate(ids)])
        assert np.allclose(grouped, naive)

    def test_routed_single_expert(self, bank):
        x = np.random.default_rng(3).normal(size=(6, 8))
        out = bank.forward_routed(x, np.full(6, 2))
        assert np.allclose(out, bank.forward_expert(2, x))

    def test_routed_rejects_bad_ids(self, bank):
        with pytest.raises(ValueError):
            bank.forward_routed(np.zeros((2, 8)), np.array([0, 9]))

    def test_routed_rejects_shape_mismatch(self, bank):
        with pytest.raises(ValueError):
            bank.forward_routed(np.zeros((2, 8)), np.array([0]))

    def test_topk_weighted_combination(self, bank):
        x = np.random.default_rng(4).normal(size=(5, 8))
        ids = np.tile(np.array([[0, 1]]), (5, 1))
        w = np.tile(np.array([[0.75, 0.25]]), (5, 1))
        out = bank.forward_topk(x, ids, w)
        expected = 0.75 * bank.forward_expert(0, x) + 0.25 * bank.forward_expert(1, x)
        assert np.allclose(out, expected)

    def test_topk_k1_equals_routed(self, bank):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(7, 8))
        ids = rng.integers(0, 4, size=(7, 1))
        out = bank.forward_topk(x, ids, np.ones((7, 1)))
        assert np.allclose(out, bank.forward_routed(x, ids[:, 0]))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ExpertBank(0, 8, 16, np.random.default_rng(0))
