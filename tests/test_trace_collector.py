"""Unit tests for repro.trace.collector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.generation import generate
from repro.model.transformer import MoETransformer
from repro.trace.collector import collect_trace, trace_from_generation


@pytest.fixture
def model(small_model) -> MoETransformer:
    return MoETransformer(small_model, np.random.default_rng(0))


class TestCollectTrace:
    def test_exact_token_count(self, model, pile_corpus, rng):
        trace = collect_trace(model, pile_corpus, num_tokens=100, doc_len=16, rng=rng)
        assert trace.num_tokens == 100
        assert trace.num_layers == model.config.num_moe_layers
        assert trace.source == "pile"

    def test_deterministic(self, model, pile_corpus):
        a = collect_trace(model, pile_corpus, 64, rng=np.random.default_rng(1))
        b = collect_trace(model, pile_corpus, 64, rng=np.random.default_rng(1))
        assert np.array_equal(a.paths, b.paths)

    def test_rejects_zero_tokens(self, model, pile_corpus):
        with pytest.raises(ValueError):
            collect_trace(model, pile_corpus, 0)

    def test_rejects_vocab_mismatch(self, model):
        from repro.trace.datasets import make_corpus

        big = make_corpus("pile", vocab_size=4096, num_topics=8)
        with pytest.raises(ValueError):
            collect_trace(model, big, 10)

    def test_routing_has_structure(self, model, pile_corpus, rng):
        """Traces from a topic corpus show above-chance affinity: the model
        substrate must produce correlated inter-layer routing."""
        from repro.core.affinity import affinity_concentration

        trace = collect_trace(model, pile_corpus, 600, rng=rng)
        conc = affinity_concentration(trace, 0, top=2)
        chance = 2 / trace.num_experts
        assert conc > chance


class TestTraceFromGeneration:
    def test_all_positions(self, model):
        prompts = np.random.default_rng(2).integers(0, 128, size=(2, 4))
        result = generate(model, prompts, steps=3)
        trace = trace_from_generation(result, model.config.num_experts)
        assert trace.num_tokens == 8 + 6

    def test_decode_only(self, model):
        prompts = np.random.default_rng(3).integers(0, 128, size=(2, 4))
        result = generate(model, prompts, steps=3)
        trace = trace_from_generation(result, model.config.num_experts, decode_only=True)
        assert trace.num_tokens == 6

    def test_source_label(self, model):
        prompts = np.zeros((1, 2), dtype=int)
        result = generate(model, prompts, steps=1)
        trace = trace_from_generation(result, model.config.num_experts, source="xyz")
        assert trace.source == "xyz"
