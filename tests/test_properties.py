"""Property-based tests (hypothesis) on core invariants.

These pin down the algebraic guarantees the rest of the system leans on:
placement feasibility (the ILP's constraints), conservation of probability
in affinity estimates, monotonicity of the collective cost models, and the
engine's token-conservation law.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.collectives import allgather_cost, alltoall_matrix
from repro.cluster.topology import Topology
from repro.config import ClusterConfig
from repro.core.affinity import scaled_affinity, set_affinity
from repro.core.placement.base import placement_locality
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.ilp import assignment_solve, ilp_placement
from repro.core.placement.vanilla import vanilla_placement
from repro.trace.events import RoutingTrace
from repro.trace.markov import MarkovRoutingModel

# -- strategies ----------------------------------------------------------------


@st.composite
def trace_and_gpus(draw):
    """A random routing trace plus a compatible GPU count."""
    e = draw(st.sampled_from([4, 8, 16]))
    L = draw(st.integers(min_value=2, max_value=5))
    n = draw(st.integers(min_value=8, max_value=200))
    g = draw(st.sampled_from([g for g in (1, 2, 4) if e % g == 0]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    paths = np.random.default_rng(seed).integers(0, e, size=(n, L))
    return RoutingTrace(paths, num_experts=e), g


@st.composite
def traffic_matrix(draw):
    g = draw(st.sampled_from([2, 4, 8]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    scale = draw(st.floats(min_value=1.0, max_value=1e9))
    rng = np.random.default_rng(seed)
    return g, rng.random((g, g)) * scale


# -- placement invariants ---------------------------------------------------------


class TestPlacementProperties:
    @given(trace_and_gpus())
    @settings(max_examples=25, deadline=None)
    def test_ilp_placement_always_feasible(self, tg):
        """Formulas 9/10 hold for every solver output on every input."""
        trace, g = tg
        p = ilp_placement(trace, g, sweeps=1)
        cap = trace.num_experts // g
        for j in range(trace.num_layers):
            counts = np.bincount(p.gpu_of[j], minlength=g)
            assert (counts == cap).all()

    @given(trace_and_gpus())
    @settings(max_examples=25, deadline=None)
    def test_greedy_placement_always_feasible(self, tg):
        trace, g = tg
        p = greedy_placement(trace, g)
        cap = trace.num_experts // g
        for j in range(trace.num_layers):
            assert (np.bincount(p.gpu_of[j], minlength=g) == cap).all()

    @given(trace_and_gpus())
    @settings(max_examples=25, deadline=None)
    def test_locality_bounded(self, tg):
        trace, g = tg
        p = vanilla_placement(trace.num_layers, trace.num_experts, g)
        stats = placement_locality(p, trace)
        assert 0.0 <= stats.gpu_stay_fraction <= 1.0
        assert stats.node_stay_fraction >= stats.gpu_stay_fraction - 1e-12

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_assignment_solve_feasible_and_no_worse_than_random(self, g, cap, seed):
        rng = np.random.default_rng(seed)
        e = g * cap
        benefit = rng.random((e, g))
        groups = assignment_solve(benefit, g)
        assert (np.bincount(groups, minlength=g) == cap).all()
        got = benefit[np.arange(e), groups].sum()
        random_groups = np.repeat(np.arange(g), cap)
        assert got >= benefit[np.arange(e), random_groups].sum() - 1e-9


# -- affinity invariants -------------------------------------------------------------


class TestAffinityProperties:
    @given(trace_and_gpus())
    @settings(max_examples=25, deadline=None)
    def test_conditional_rows_stochastic(self, tg):
        trace, _ = tg
        for j in range(trace.num_layers - 1):
            m = trace.conditional_matrix(j)
            assert np.allclose(m.sum(axis=1), 1.0)
            assert (m >= 0).all()

    @given(trace_and_gpus())
    @settings(max_examples=25, deadline=None)
    def test_scaled_affinity_bounded(self, tg):
        trace, _ = tg
        assert 0.0 <= scaled_affinity(trace) <= 1.0

    @given(trace_and_gpus(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_set_affinity_partition(self, tg, seed):
        """Affinity over a destination partition sums to 1 (for seen srcs)."""
        trace, _ = tg
        e = trace.num_experts
        rng = np.random.default_rng(seed)
        perm = rng.permutation(e)
        cut = e // 2
        seen = np.unique(trace.paths[:, 0])
        total = set_affinity(trace, 0, seen, perm[:cut]) + set_affinity(
            trace, 0, seen, perm[cut:]
        )
        assert total == pytest.approx(1.0)

    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_markov_rows_always_stochastic(self, e, L, affinity, seed):
        model = MarkovRoutingModel.with_affinity(
            e, L, affinity, successors=min(2, e), rng=np.random.default_rng(seed)
        )
        assert np.allclose(model.transitions.sum(axis=2), 1.0)
        trace = model.sample(50, np.random.default_rng(seed + 1))
        assert trace.paths.max() < e


# -- collective cost invariants ----------------------------------------------------------


class TestCollectiveProperties:
    @given(traffic_matrix())
    @settings(max_examples=30, deadline=None)
    def test_alltoall_nonnegative_and_conserves_bytes(self, gt):
        g, traffic = gt
        topo = Topology(ClusterConfig(num_nodes=max(1, g // 2), gpus_per_node=2 if g > 1 else 1))
        res = alltoall_matrix(topo, traffic)
        assert res.time_s >= 0.0
        assert res.total_bytes == pytest.approx(traffic.sum(), rel=1e-9)

    @given(traffic_matrix(), st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_alltoall_monotone_in_traffic(self, gt, factor):
        g, traffic = gt
        topo = Topology(ClusterConfig(num_nodes=max(1, g // 2), gpus_per_node=2 if g > 1 else 1))
        base = alltoall_matrix(topo, traffic)
        more = alltoall_matrix(topo, traffic * factor)
        assert more.time_s >= base.time_s

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.0, max_value=1e9),
    )
    @settings(max_examples=30, deadline=None)
    def test_allgather_bytes_formula(self, nodes, gpn, contrib):
        topo = Topology(ClusterConfig(num_nodes=nodes, gpus_per_node=gpn))
        res = allgather_cost(topo, contrib)
        g = nodes * gpn
        if g > 1:
            assert res.total_bytes == pytest.approx((g - 1) * g * contrib, rel=1e-9)


# -- engine conservation ------------------------------------------------------------------


class TestEngineProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from(["vanilla", "context_coherent", "exflow"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_every_token_processed_once_per_layer(self, seed, mode_name):
        """FFN compute equals tokens x layers regardless of mode/placement:
        dispatch must neither drop nor duplicate tokens."""
        from repro.config import ExecutionMode, InferenceConfig, ModelConfig
        from repro.engine.costs import CostModel
        from repro.engine.executor import simulate_inference
        from repro.engine.workload import make_decode_workload

        model = ModelConfig("p", num_layers=3, num_experts=8, d_model=32, vocab_size=64)
        cluster = ClusterConfig(num_nodes=2, gpus_per_node=2)
        infer = InferenceConfig(
            requests_per_gpu=2, prompt_len=4, generate_len=3,
            mode=ExecutionMode(mode_name), seed=seed,
        )
        workload = make_decode_workload(model, cluster, infer, rng=np.random.default_rng(seed))
        placement = vanilla_placement(3, 8, 4)
        res = simulate_inference(model, cluster, infer, placement, workload)

        cost = CostModel(model, gpu_flops=cluster.gpu_flops)
        total_token_layers = workload.iterations * workload.num_requests * 3
        # lockstep max per GPU >= even split; <= everything on one GPU
        lower = cost.ffn_time(total_token_layers // 4)
        upper = cost.ffn_time(total_token_layers)
        assert lower - 1e-12 <= res.breakdown.expert_ffn_s <= upper + 1e-12
